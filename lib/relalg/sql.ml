module Value = Storage.Value
module Schema = Storage.Schema

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STR of string
  | PARAM of int
  | PUNCT of string
  | EOF

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && ((src.[!i] >= '0' && src.[!i] <= '9') || src.[!i] = '.') do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      if String.contains s '.' then push (FLOAT (float_of_string s))
      else push (INT (int_of_string s))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      push (IDENT (String.sub src start (!i - start)))
    end
    else if c = '\'' then begin
      incr i;
      let b = Buffer.create 8 in
      let closed = ref false in
      while !i < n && not !closed do
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char b '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char b src.[!i];
          incr i
        end
      done;
      if not !closed then fail "unterminated string literal";
      push (STR (Buffer.contents b))
    end
    else if c = '$' then begin
      incr i;
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do incr i done;
      if !i = start then fail "expected parameter number after $";
      push (PARAM (int_of_string (String.sub src start (!i - start))))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
          push (PUNCT two);
          i := !i + 2
      | _ ->
          (match c with
          | '(' | ')' | ',' | '.' | '*' | '=' | '<' | '>' | '+' | '-' | '/'
          | '%' | ';' ->
              push (PUNCT (String.make 1 c))
          | _ -> fail "unexpected character %C" c);
          incr i
    end
  done;
  push EOF;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Token stream                                                       *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> EOF | t :: _ -> t
let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let next s =
  let t = peek s in
  advance s;
  t

let kw_eq a b = String.lowercase_ascii a = String.lowercase_ascii b

let peek_kw s kw = match peek s with IDENT id -> kw_eq id kw | _ -> false

let accept_kw s kw =
  if peek_kw s kw then begin
    advance s;
    true
  end
  else false

let expect_kw s kw =
  if not (accept_kw s kw) then
    fail "expected keyword %s" (String.uppercase_ascii kw)

let accept_punct s p =
  match peek s with
  | PUNCT q when String.equal q p ->
      advance s;
      true
  | _ -> false

let expect_punct s p = if not (accept_punct s p) then fail "expected %S" p

let expect_ident s =
  match next s with IDENT id -> id | _ -> fail "expected identifier"

(* ------------------------------------------------------------------ *)
(* Raw AST (before name resolution)                                   *)
(* ------------------------------------------------------------------ *)

type raw_expr =
  | RCol of string option * string (* qualifier, column name *)
  | RConst of Value.t
  | RParam of int
  | RCmp of Expr.cmp * raw_expr * raw_expr
  | RLike of raw_expr * raw_expr
  | RAnd of raw_expr * raw_expr
  | ROr of raw_expr * raw_expr
  | RNot of raw_expr
  | RIsNull of raw_expr * bool (* negated? *)
  | RArith of Expr.arith * raw_expr * raw_expr
  | RAgg of Aggregate.func * raw_expr option

let agg_func_of_name name =
  match String.lowercase_ascii name with
  | "count" -> Some Aggregate.Count
  | "sum" -> Some Aggregate.Sum
  | "min" -> Some Aggregate.Min
  | "max" -> Some Aggregate.Max
  | "avg" -> Some Aggregate.Avg
  | _ -> None

let is_keyword id =
  List.exists (kw_eq id)
    [
      "select"; "from"; "where"; "group"; "by"; "order"; "limit"; "insert";
      "into"; "values"; "and"; "or"; "not"; "like"; "is"; "null"; "as";
      "join"; "on"; "asc"; "desc"; "update"; "set";
    ]

let rec parse_expr s = parse_or s

and parse_or s =
  let left = parse_and s in
  if accept_kw s "or" then ROr (left, parse_or s) else left

and parse_and s =
  let left = parse_not s in
  if accept_kw s "and" then RAnd (left, parse_and s) else left

and parse_not s =
  if accept_kw s "not" then RNot (parse_not s) else parse_predicate s

and parse_predicate s =
  let left = parse_additive s in
  match peek s with
  | PUNCT "=" ->
      advance s;
      RCmp (Expr.Eq, left, parse_additive s)
  | PUNCT ("<>" | "!=") ->
      advance s;
      RCmp (Expr.Ne, left, parse_additive s)
  | PUNCT "<" ->
      advance s;
      RCmp (Expr.Lt, left, parse_additive s)
  | PUNCT "<=" ->
      advance s;
      RCmp (Expr.Le, left, parse_additive s)
  | PUNCT ">" ->
      advance s;
      RCmp (Expr.Gt, left, parse_additive s)
  | PUNCT ">=" ->
      advance s;
      RCmp (Expr.Ge, left, parse_additive s)
  | IDENT id when kw_eq id "like" ->
      advance s;
      RLike (left, parse_additive s)
  | IDENT id when kw_eq id "is" ->
      advance s;
      let negated = accept_kw s "not" in
      expect_kw s "null";
      RIsNull (left, negated)
  | _ -> left

and parse_additive s =
  let left = ref (parse_multiplicative s) in
  let continue = ref true in
  while !continue do
    if accept_punct s "+" then
      left := RArith (Expr.Add, !left, parse_multiplicative s)
    else if accept_punct s "-" then
      left := RArith (Expr.Sub, !left, parse_multiplicative s)
    else continue := false
  done;
  !left

and parse_multiplicative s =
  let left = ref (parse_atom s) in
  let continue = ref true in
  while !continue do
    if accept_punct s "*" then left := RArith (Expr.Mul, !left, parse_atom s)
    else if accept_punct s "/" then left := RArith (Expr.Div, !left, parse_atom s)
    else if accept_punct s "%" then left := RArith (Expr.Mod, !left, parse_atom s)
    else continue := false
  done;
  !left

and parse_atom s =
  match next s with
  | INT v -> RConst (Value.VInt v)
  | FLOAT v -> RConst (Value.VFloat v)
  | STR v -> RConst (Value.VStr v)
  | PARAM n -> RParam n
  | PUNCT "(" ->
      let e = parse_expr s in
      expect_punct s ")";
      e
  | PUNCT "-" -> RArith (Expr.Sub, RConst (Value.VInt 0), parse_atom s)
  | IDENT id when kw_eq id "null" -> RConst Value.Null
  | IDENT id when kw_eq id "true" -> RConst (Value.VBool true)
  | IDENT id when kw_eq id "false" -> RConst (Value.VBool false)
  | IDENT id -> (
      match peek s with
      | PUNCT "(" -> (
          match agg_func_of_name id with
          | Some func ->
              advance s;
              if accept_punct s "*" then begin
                expect_punct s ")";
                if func <> Aggregate.Count then fail "only count(*) is allowed";
                RAgg (Aggregate.Count_star, None)
              end
              else begin
                let arg = parse_expr s in
                expect_punct s ")";
                RAgg (func, Some arg)
              end
          | None -> fail "unknown function %s" id)
      | PUNCT "." ->
          advance s;
          let col = expect_ident s in
          RCol (Some id, col)
      | _ ->
          if is_keyword id then fail "unexpected keyword %s" id
          else RCol (None, id))
  | EOF -> fail "unexpected end of query"
  | PUNCT p -> fail "unexpected %S" p

(* ------------------------------------------------------------------ *)
(* Statement grammar                                                  *)
(* ------------------------------------------------------------------ *)

type sel_item = { raw : raw_expr; alias : string option }
type order_item = { target : string; dir : Plan.dir }

type select_stmt = {
  items : sel_item list;
  star : bool;
  base_table : string;
  joins : (string * (string option * string) * (string option * string)) list;
  where : raw_expr option;
  group_by : raw_expr list;
  order_by : order_item list;
  limit : int option;
}

let parse_select_stmt s =
  let items = ref [] in
  let star = ref false in
  if accept_punct s "*" then star := true
  else begin
    let rec loop () =
      let raw = parse_expr s in
      let alias =
        if accept_kw s "as" then Some (expect_ident s)
        else
          match peek s with
          | IDENT id when not (is_keyword id) ->
              advance s;
              Some id
          | _ -> None
      in
      items := { raw; alias } :: !items;
      if accept_punct s "," then loop ()
    in
    loop ()
  end;
  expect_kw s "from";
  let base_table = expect_ident s in
  let joins = ref [] in
  while accept_kw s "join" do
    let jt = expect_ident s in
    expect_kw s "on";
    let parse_qcol () =
      let a = expect_ident s in
      if accept_punct s "." then (Some a, expect_ident s) else (None, a)
    in
    let l = parse_qcol () in
    expect_punct s "=";
    let r = parse_qcol () in
    joins := (jt, l, r) :: !joins
  done;
  let where = if accept_kw s "where" then Some (parse_expr s) else None in
  let group_by =
    if accept_kw s "group" then begin
      expect_kw s "by";
      let keys = ref [ parse_expr s ] in
      while accept_punct s "," do
        keys := parse_expr s :: !keys
      done;
      List.rev !keys
    end
    else []
  in
  let order_by =
    if accept_kw s "order" then begin
      expect_kw s "by";
      let one () =
        let target = expect_ident s in
        let dir =
          if accept_kw s "desc" then Plan.Desc
          else begin
            ignore (accept_kw s "asc");
            Plan.Asc
          end
        in
        { target; dir }
      in
      let os = ref [ one () ] in
      while accept_punct s "," do
        os := one () :: !os
      done;
      List.rev !os
    end
    else []
  in
  let limit =
    if accept_kw s "limit" then
      match next s with
      | INT n -> Some n
      | _ -> fail "expected integer after LIMIT"
    else None
  in
  ignore (accept_punct s ";");
  (match peek s with EOF -> () | _ -> fail "trailing input after query");
  {
    items = List.rev !items;
    star = !star;
    base_table;
    joins = List.rev !joins;
    where;
    group_by;
    order_by;
    limit;
  }

(* ------------------------------------------------------------------ *)
(* Name resolution                                                    *)
(* ------------------------------------------------------------------ *)

(* environment entry: (lowercase table name, column name, position) *)
type env = (string * string * int) list

(* resolve a table name case-insensitively against the catalog *)
let find_table cat name =
  try Storage.Catalog.find cat name
  with Mrdb_util.Errors.Unknown_table _ -> (
    match
      List.find_opt (fun n -> kw_eq n name) (Storage.Catalog.names cat)
    with
    | Some n -> Storage.Catalog.find cat n
    | None -> fail "unknown table %s" name)

let table_name cat name =
  (Storage.Relation.schema (find_table cat name)).Schema.name

let env_of_table cat name offset : env =
  let rel = find_table cat name in
  let schema = Storage.Relation.schema rel in
  List.init (Schema.arity schema) (fun i ->
      ( String.lowercase_ascii name,
        (Schema.attr schema i).Schema.name,
        offset + i ))

let resolve_col (env : env) qualifier name =
  let matches =
    List.filter
      (fun (tbl, col, _) ->
        kw_eq col name
        && match qualifier with Some q -> kw_eq q tbl | None -> true)
      env
  in
  match matches with
  | [ (_, _, pos) ] -> pos
  | [] -> fail "unknown column %s" name
  | _ -> fail "ambiguous column %s" name

let rec resolve env raw : Expr.t =
  match raw with
  | RCol (q, name) -> Expr.Col (resolve_col env q name)
  | RConst v -> Expr.Const v
  | RParam n -> Expr.Param n
  | RCmp (op, a, b) -> Expr.Cmp (op, resolve env a, resolve env b)
  | RLike (a, b) -> Expr.Like (resolve env a, resolve env b)
  | RAnd (a, b) ->
      Expr.And (Expr.conjuncts (resolve env a) @ Expr.conjuncts (resolve env b))
  | ROr (a, b) -> Expr.Or [ resolve env a; resolve env b ]
  | RNot a -> Expr.Not (resolve env a)
  | RIsNull (a, negated) ->
      let e = Expr.IsNull (resolve env a) in
      if negated then Expr.Not e else e
  | RArith (op, a, b) -> Expr.Arith (op, resolve env a, resolve env b)
  | RAgg _ -> fail "aggregate not allowed in this context"

let rec contains_agg = function
  | RAgg _ -> true
  | RCol _ | RConst _ | RParam _ -> false
  | RCmp (_, a, b) | RLike (a, b) | RAnd (a, b) | ROr (a, b) | RArith (_, a, b)
    ->
      contains_agg a || contains_agg b
  | RNot a | RIsNull (a, _) -> contains_agg a

let rec raw_equal a b =
  match (a, b) with
  | RCol (q1, n1), RCol (q2, n2) ->
      kw_eq n1 n2
      && (match (q1, q2) with
         | Some x, Some y -> kw_eq x y
         | None, _ | _, None -> true)
  | RConst v1, RConst v2 -> Value.equal v1 v2
  | RParam n1, RParam n2 -> n1 = n2
  | RCmp (o1, a1, b1), RCmp (o2, a2, b2) ->
      o1 = o2 && raw_equal a1 a2 && raw_equal b1 b2
  | RArith (o1, a1, b1), RArith (o2, a2, b2) ->
      o1 = o2 && raw_equal a1 a2 && raw_equal b1 b2
  | RLike (a1, b1), RLike (a2, b2)
  | RAnd (a1, b1), RAnd (a2, b2)
  | ROr (a1, b1), ROr (a2, b2) ->
      raw_equal a1 a2 && raw_equal b1 b2
  | RNot a1, RNot a2 -> raw_equal a1 a2
  | RIsNull (a1, n1), RIsNull (a2, n2) -> n1 = n2 && raw_equal a1 a2
  | RAgg (f1, e1), RAgg (f2, e2) -> (
      f1 = f2
      &&
      match (e1, e2) with
      | None, None -> true
      | Some x, Some y -> raw_equal x y
      | _ -> false)
  | _ -> false

let default_name i raw =
  match raw with
  | RCol (_, name) -> name
  | RAgg (f, _) -> (
      match f with
      | Aggregate.Count_star | Aggregate.Count -> "count"
      | Aggregate.Sum -> "sum"
      | Aggregate.Min -> "min"
      | Aggregate.Max -> "max"
      | Aggregate.Avg -> "avg")
  | _ -> Printf.sprintf "col%d" i

(* ------------------------------------------------------------------ *)
(* Plan construction                                                  *)
(* ------------------------------------------------------------------ *)

let build_from_where cat stmt : Plan.t * env =
  let where_conjuncts =
    match stmt.where with
    | None -> []
    | Some w ->
        let rec flat = function RAnd (a, b) -> flat a @ flat b | e -> [ e ] in
        flat w
  in
  let table_envs =
    (stmt.base_table, env_of_table cat stmt.base_table 0)
    :: List.map (fun (t, _, _) -> (t, env_of_table cat t 0)) stmt.joins
  in
  (* tables whose columns a raw expression references *)
  let rec touched acc = function
    | RCol (q, name) ->
        let owners =
          List.filter_map
            (fun (t, env) ->
              let found =
                List.exists
                  (fun (tbl, col, _) ->
                    kw_eq col name
                    && match q with Some qq -> kw_eq qq tbl | None -> true)
                  env
              in
              if found then Some t else None)
            table_envs
        in
        owners @ acc
    | RConst _ | RParam _ -> acc
    | RCmp (_, a, b) | RLike (a, b) | RAnd (a, b) | ROr (a, b)
    | RArith (_, a, b) ->
        touched (touched acc a) b
    | RNot a | RIsNull (a, _) -> touched acc a
    | RAgg (_, Some a) -> touched acc a
    | RAgg (_, None) -> acc
  in
  let single_table_of raw =
    match List.sort_uniq compare (touched [] raw) with
    | [ t ] -> Some t
    | _ -> None
  in
  let pushed : (string, raw_expr list) Hashtbl.t = Hashtbl.create 8 in
  let residual = ref [] in
  List.iter
    (fun conj ->
      match single_table_of conj with
      | Some t when stmt.joins <> [] ->
          let prev = try Hashtbl.find pushed t with Not_found -> [] in
          Hashtbl.replace pushed t (conj :: prev)
      | _ -> residual := conj :: !residual)
    where_conjuncts;
  let table_plan name =
    let env = env_of_table cat name 0 in
    let canonical = table_name cat name in
    match Hashtbl.find_opt pushed name with
    | Some conjs ->
        let exprs = List.map (resolve env) (List.rev conjs) in
        let pred = match exprs with [ e ] -> e | es -> Expr.And es in
        Plan.Select (Plan.Scan canonical, pred)
    | None -> Plan.Scan canonical
  in
  let plan = ref (table_plan stmt.base_table) in
  let env = ref (env_of_table cat stmt.base_table 0) in
  List.iter
    (fun (jt, (lq, lc), (rq, rc)) ->
      let right_local = env_of_table cat jt 0 in
      let find_in e q c =
        try Some (resolve_col e q c) with Parse_error _ -> None
      in
      let lpos, rpos =
        match (find_in !env lq lc, find_in right_local rq rc) with
        | Some l, Some r -> (l, r)
        | _ -> (
            match (find_in !env rq rc, find_in right_local lq lc) with
            | Some l, Some r -> (l, r)
            | _ -> fail "cannot resolve join condition %s = %s" lc rc)
      in
      let offset = List.length !env in
      plan :=
        Plan.Join
          {
            left = !plan;
            right = table_plan jt;
            left_keys = [ lpos ];
            right_keys = [ rpos ];
          };
      env := !env @ env_of_table cat jt offset)
    stmt.joins;
  (match List.rev !residual with
  | [] -> ()
  | conjs ->
      let exprs = List.map (resolve !env) conjs in
      let pred = match exprs with [ e ] -> e | es -> Expr.And es in
      plan := Plan.Select (!plan, pred));
  (!plan, !env)

let build_select cat stmt : Plan.t =
  let base, env = build_from_where cat stmt in
  let has_agg = List.exists (fun it -> contains_agg it.raw) stmt.items in
  let plan, out_names =
    if (not has_agg) && stmt.group_by = [] then
      if stmt.star then (base, List.map (fun (_, c, _) -> c) env)
      else begin
        let exprs =
          List.mapi
            (fun i it ->
              let name =
                match it.alias with
                | Some a -> a
                | None -> default_name i it.raw
              in
              (resolve env it.raw, name))
            stmt.items
        in
        (Plan.Project (base, exprs), List.map snd exprs)
      end
    else begin
      if stmt.star then fail "SELECT * cannot be combined with aggregates";
      (* resolve a GROUP BY item, allowing references to select aliases *)
      let dealias g =
        match g with
        | RCol (None, name) -> (
            match
              List.find_opt
                (fun it ->
                  match it.alias with Some a -> kw_eq a name | None -> false)
                stmt.items
            with
            | Some it when not (contains_agg it.raw) -> it.raw
            | _ -> g)
        | _ -> g
      in
      let group_raws = List.map dealias stmt.group_by in
      let keys =
        List.mapi
          (fun i g ->
            let name =
              match
                List.find_opt (fun it -> raw_equal it.raw g) stmt.items
              with
              | Some { alias = Some a; _ } -> a
              | _ -> (
                  match g with
                  | RCol (_, n) -> n
                  | _ -> Printf.sprintf "key%d" i)
            in
            (g, (resolve env g, name)))
          group_raws
      in
      let n_keys = List.length keys in
      let aggs = ref [] in
      (* map each select item to a column of the group-by output *)
      let projections =
        List.mapi
          (fun i it ->
            let name =
              match it.alias with Some a -> a | None -> default_name i it.raw
            in
            match it.raw with
            | RAgg (func, arg) ->
                let agg =
                  match arg with
                  | Some a -> Aggregate.make func ~expr:(resolve env a) name
                  | None -> Aggregate.make func name
                in
                aggs := !aggs @ [ agg ];
                (Expr.Col (n_keys + List.length !aggs - 1), name)
            | raw -> (
                let rec find i = function
                  | [] -> fail "select item %s is not in GROUP BY" name
                  | (g, _) :: rest ->
                      if raw_equal g raw then i else find (i + 1) rest
                in
                let ki = find 0 keys in
                (Expr.Col ki, name)))
          stmt.items
      in
      let gb =
        Plan.Group_by { child = base; keys = List.map snd keys; aggs = !aggs }
      in
      (Plan.Project (gb, projections), List.map snd projections)
    end
  in
  let plan =
    match stmt.order_by with
    | [] -> plan
    | items -> (
        let pos_of name =
          let rec go i = function
            | [] -> None
            | n :: rest -> if kw_eq n name then Some i else go (i + 1) rest
          in
          go 0 out_names
        in
        let resolved = List.map (fun o -> (o, pos_of o.target)) items in
        if List.for_all (fun (_, p) -> p <> None) resolved then
          Plan.Sort
            {
              child = plan;
              keys =
                List.map (fun (o, p) -> (Option.get p, o.dir)) resolved;
            }
        else
          (* SQL permits ordering by base-table columns that are not in the
             select list; implement it with hidden sort columns: extend the
             projection, sort, then project the visible prefix back out *)
          match plan with
          | Plan.Project (base, exprs) when (not has_agg) && stmt.group_by = []
            ->
              let visible = List.length exprs in
              let hidden = ref [] in
              let keys =
                List.map
                  (fun (o, p) ->
                    match p with
                    | Some p -> (p, o.dir)
                    | None ->
                        let e = resolve env (RCol (None, o.target)) in
                        hidden := !hidden @ [ (e, "__sort_" ^ o.target) ];
                        (visible + List.length !hidden - 1, o.dir))
                  resolved
              in
              let widened = Plan.Project (base, exprs @ !hidden) in
              let sorted = Plan.Sort { child = widened; keys } in
              Plan.Project
                ( sorted,
                  List.mapi (fun i (_, name) -> (Expr.Col i, name)) exprs )
          | _ ->
              let missing =
                List.filter_map
                  (fun (o, p) -> if p = None then Some o.target else None)
                  resolved
              in
              fail "ORDER BY references unknown column %s"
                (String.concat ", " missing))
  in
  match stmt.limit with None -> plan | Some n -> Plan.Limit (plan, n)

let parse_insert s =
  expect_kw s "into";
  let table = expect_ident s in
  expect_kw s "values";
  expect_punct s "(";
  let values = ref [ parse_expr s ] in
  while accept_punct s "," do
    values := parse_expr s :: !values
  done;
  expect_punct s ")";
  ignore (accept_punct s ";");
  (match peek s with EOF -> () | _ -> fail "trailing input after statement");
  (table, List.rev !values)

let parse_update s =
  let table = expect_ident s in
  expect_kw s "set";
  let one () =
    let col = expect_ident s in
    expect_punct s "=";
    let e = parse_expr s in
    (col, e)
  in
  let assigns = ref [ one () ] in
  while accept_punct s "," do
    assigns := one () :: !assigns
  done;
  let where = if accept_kw s "where" then Some (parse_expr s) else None in
  ignore (accept_punct s ";");
  (match peek s with EOF -> () | _ -> fail "trailing input after statement");
  (table, List.rev !assigns, where)

let parse cat src =
  let s = { toks = tokenize src } in
  if accept_kw s "select" then build_select cat (parse_select_stmt s)
  else if accept_kw s "insert" then begin
    let table, raw_values = parse_insert s in
    let values = List.map (resolve []) raw_values in
    Plan.Insert { table = table_name cat table; values }
  end
  else if accept_kw s "update" then begin
    let table, raw_assigns, where = parse_update s in
    let env = env_of_table cat table 0 in
    let assignments =
      List.map
        (fun (col, raw) -> (resolve_col env None col, resolve env raw))
        raw_assigns
    in
    Plan.Update
      {
        table = table_name cat table;
        assignments;
        pred = Option.map (resolve env) where;
      }
  end
  else fail "expected SELECT, INSERT or UPDATE"
