(** Aggregate functions for group-by operators. *)

type func = Count_star | Count | Sum | Min | Max | Avg

type t = {
  func : func;
  expr : Expr.t option;  (** [None] only for [Count_star] *)
  name : string;  (** output column name *)
}

val make : func -> ?expr:Expr.t -> string -> t

(** Mutable accumulation state, one per (group, aggregate). *)
type state

val init : func -> state
val step : state -> Storage.Value.t -> unit

val step_n : state -> Storage.Value.t -> int -> unit
(** [step_n st v k] accumulates [v] [k] times, exactly equal to [k] calls of
    {!step}: counts and integer sums take the closed form, min/max step
    once, float sums repeat the addition (floating-point rounding identity
    with the per-row path). *)

val finish : state -> Storage.Value.t

val output_type : t -> (int -> Storage.Value.ty) -> Storage.Value.ty
(** Result type given the input column types. *)

(** {1 Parallel decomposition}

    A morsel-parallel group-by evaluates each aggregate per morsel and
    combines the finished partial values across morsels.  All functions but
    [avg] are directly mergeable; [avg] is decomposed into sum and count and
    recombined at the end. *)

val decompose : t -> t list
(** The mergeable partial aggregates that stand in for [t] inside a
    per-morsel plan: [avg e] becomes [[sum e; count e]], everything else is
    [[t]] unchanged. *)

val merge_value : func -> Storage.Value.t -> Storage.Value.t -> Storage.Value.t
(** [merge_value f a b] combines two finished partial values of a mergeable
    aggregate: counts add, sums add (with [Null] as neutral element), min
    and max compare, earlier-morsel operand winning ties.  Partials must be
    merged in morsel order so first-occurrence semantics match a sequential
    run.  @raise Invalid_argument on [Avg] — decompose it first. *)

val recombine : t -> Storage.Value.t array -> Storage.Value.t
(** [recombine t partials] produces the final value of [t] from its merged
    {!decompose} partials (in decomposition order): reconstructs [avg] from
    sum and count, and is the identity for every other function. *)

val pp : Format.formatter -> t -> unit
