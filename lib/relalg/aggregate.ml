module Value = Storage.Value

type func = Count_star | Count | Sum | Min | Max | Avg

type t = { func : func; expr : Expr.t option; name : string }

let make func ?expr name =
  (match (func, expr) with
  | Count_star, Some _ -> invalid_arg "Aggregate.make: count(*) takes no expr"
  | (Count | Sum | Min | Max | Avg), None ->
      invalid_arg "Aggregate.make: aggregate needs an expression"
  | _ -> ());
  { func; expr; name }

type state = {
  func : func;
  mutable count : int;
  mutable sum_i : int;
  mutable sum_f : float;
  mutable is_float : bool;
  mutable best : Value.t; (* current min/max *)
}

let init func =
  { func; count = 0; sum_i = 0; sum_f = 0.0; is_float = false; best = Value.Null }

let step st v =
  match st.func with
  | Count_star -> st.count <- st.count + 1
  | Count -> if not (Value.is_null v) then st.count <- st.count + 1
  | Sum | Avg ->
      if not (Value.is_null v) then begin
        st.count <- st.count + 1;
        (match v with
        | Value.VFloat f ->
            st.is_float <- true;
            st.sum_f <- st.sum_f +. f
        | _ -> st.sum_i <- st.sum_i + Value.to_int v)
      end
  | Min ->
      if not (Value.is_null v) then
        if Value.is_null st.best || Value.compare v st.best < 0 then st.best <- v
  | Max ->
      if not (Value.is_null v) then
        if Value.is_null st.best || Value.compare v st.best > 0 then st.best <- v

(* [step_n st v k] = k repetitions of [step st v].  Counts and integer sums
   use the closed form (native-int arithmetic wraps mod 2^63, so [k * v]
   equals k wrapped additions exactly); min/max are idempotent; float sums
   stay looped — repeated addition is not distributive in floating point and
   the run-granular path must match the per-row path bit for bit. *)
let step_n st v k =
  if k = 1 then step st v
  else if k > 0 then
    match st.func with
    | Count_star -> st.count <- st.count + k
    | Count -> if not (Value.is_null v) then st.count <- st.count + k
    | Sum | Avg ->
        if not (Value.is_null v) then begin
          match v with
          | Value.VFloat f ->
              for _ = 1 to k do
                st.count <- st.count + 1;
                st.is_float <- true;
                st.sum_f <- st.sum_f +. f
              done
          | _ ->
              st.count <- st.count + k;
              st.sum_i <- st.sum_i + (k * Value.to_int v)
        end
    | Min | Max -> step st v

let total st = st.sum_f +. float_of_int st.sum_i

let finish st =
  match st.func with
  | Count_star | Count -> Value.VInt st.count
  | Sum ->
      if st.count = 0 then Value.Null
      else if st.is_float then Value.VFloat (total st)
      else Value.VInt st.sum_i
  | Avg -> if st.count = 0 then Value.Null else Value.VFloat (total st /. float_of_int st.count)
  | Min | Max -> st.best

(* ------------------------------------------------------------------ *)
(* Parallel decomposition: per-morsel partials and their combination    *)
(* ------------------------------------------------------------------ *)

let decompose (t : t) =
  match t.func with
  | Avg ->
      (* avg is not mergeable from finished values: compute sum and count
         per morsel and recombine at the end *)
      let e =
        match t.expr with
        | Some e -> e
        | None -> invalid_arg "Aggregate.decompose: avg without expression"
      in
      [
        make Sum ~expr:e (t.name ^ "$avg_sum");
        make Count ~expr:e (t.name ^ "$avg_count");
      ]
  | Count_star | Count | Sum | Min | Max -> [ t ]

let merge_value func a b =
  match func with
  | Count_star | Count -> Value.VInt (Value.to_int a + Value.to_int b)
  | Sum -> (
      match (a, b) with
      | Value.Null, x | x, Value.Null -> x
      | Value.VFloat x, y -> Value.VFloat (x +. Value.to_float y)
      | x, Value.VFloat y -> Value.VFloat (Value.to_float x +. y)
      | x, y -> Value.VInt (Value.to_int x + Value.to_int y))
  | Min ->
      if Value.is_null a then b
      else if Value.is_null b then a
      else if Value.compare b a < 0 then b
      else a
  | Max ->
      if Value.is_null a then b
      else if Value.is_null b then a
      else if Value.compare b a > 0 then b
      else a
  | Avg -> invalid_arg "Aggregate.merge_value: decompose avg before merging"

let recombine (t : t) partials =
  match t.func with
  | Avg ->
      let count = Value.to_int partials.(1) in
      if count = 0 then Value.Null
      else Value.VFloat (Value.to_float partials.(0) /. float_of_int count)
  | Count_star | Count | Sum | Min | Max -> partials.(0)

let output_type (t : t) col_ty =
  match t.func with
  | Count_star | Count -> Value.Int
  | Avg -> Value.Float
  | Sum | Min | Max -> (
      match t.expr with
      | Some (Expr.Col i) -> col_ty i
      | Some _ -> Value.Int
      | None -> Value.Int)

let func_name = function
  | Count_star -> "count(*)"
  | Count -> "count"
  | Sum -> "sum"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"

let pp ppf t =
  match t.expr with
  | None -> Format.fprintf ppf "%s" (func_name t.func)
  | Some e -> Format.fprintf ppf "%s(%a)" (func_name t.func) Expr.pp e
