(* mrdb — command-line front end.

   Loads one of the built-in demo databases (the paper's benchmarks), then
   runs SQL, explains plans through the cost model, renders the JiT C code,
   optimizes layouts, or calibrates the memory-hierarchy model. *)

open Cmdliner

let demo_databases = [ "micro"; "sd"; "ch"; "cnet" ]

let load_db name scale =
  let hier = Memsim.Hierarchy.create () in
  let cat =
    match name with
    | "micro" ->
        Workloads.Microbench.build ~hier
          ~n:(int_of_float (200_000.0 *. scale))
          ()
    | "sd" -> (Workloads.Sap_sd.build ~hier ~scale ()).Workloads.Sap_sd.cat
    | "ch" -> (Workloads.Ch.build ~hier ~scale ()).Workloads.Ch.cat
    | "cnet" ->
        (Workloads.Cnet.build ~hier
           ~n_products:(int_of_float (20_000.0 *. scale))
           ())
          .Workloads.Cnet.cat
    | other -> failwith (Printf.sprintf "unknown database %S" other)
  in
  (cat, hier)

let db_arg =
  let doc =
    Printf.sprintf "Demo database to load (%s)."
      (String.concat ", " demo_databases)
  in
  Arg.(value & opt (enum (List.map (fun d -> (d, d)) demo_databases)) "sd"
       & info [ "d"; "db" ] ~docv:"DB" ~doc)

let scale_arg =
  Arg.(value & opt float 0.2
       & info [ "s"; "scale" ] ~docv:"SCALE" ~doc:"Data scale factor.")

let engine_arg =
  let engines =
    List.map
      (fun e -> (Engines.Engine.name e, e))
      Engines.Engine.all_with_compiled
  in
  Arg.(value & opt (enum engines) Engines.Engine.Jit
       & info [ "e"; "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine (volcano, bulk, vectorized, hyrise, jit, \
                 compiled).  'compiled' emits C, builds it with the system \
                 cc and runs native code; plans outside its subset fall \
                 back to jit.")

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc:"SQL text.")

let param_arg =
  Arg.(value & opt_all string []
       & info [ "p"; "param" ] ~docv:"VALUE"
           ~doc:"Query parameter (repeat for \\$1, \\$2, ...); integers are \
                 parsed, everything else is a string.")

let parse_params strs =
  Array.of_list
    (List.map
       (fun s ->
         match int_of_string_opt s with
         | Some i -> Storage.Value.VInt i
         | None -> Storage.Value.VStr s)
       strs)

let print_stats st =
  Printf.printf "-- %d cycles (mem %d, cpu %d); llc misses: %d prefetched, %d random\n"
    (Memsim.Stats.total_cycles st)
    st.Memsim.Stats.mem_cycles st.Memsim.Stats.cpu_cycles
    st.Memsim.Stats.llc_seq_misses st.Memsim.Stats.llc_rand_misses

let domains_arg =
  Arg.(value & opt int 1
       & info [ "j"; "domains" ] ~docv:"N"
           ~doc:"Worker domains for morsel-parallel execution (1 = \
                 sequential).  Parallelizable plans report merged per-domain \
                 stats: summed misses, slowest-domain cycles.")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"N"
           ~doc:"Execute over a simulated $(docv)-shard cluster: every table \
                 is horizontally scattered over per-node catalogs (each with \
                 its own simulated memory hierarchy and WAL), queries run \
                 through the distributed executor (gather, partial \
                 aggregation, cost-chosen shuffle/broadcast joins), DML \
                 commits with two-phase commit, and the interconnect is \
                 charged per message and per byte (1 = single-node).")

let make_cluster ~shards cat =
  if shards < 1 then failwith "--shards must be >= 1"
  else if shards = 1 then None
  else Some (Shard.Cluster.create ~durable:true ~shards cat)

let autotune_flag =
  Arg.(value & flag
       & info [ "autotune" ]
           ~doc:"Pick the morsel size from a measured probe of the prepared \
                 pipeline (see the parallel_morsel_size metric).  Implies \
                 untraced wall-clock execution: the run reports elapsed \
                 time instead of simulated cycles.")

let sample_flag =
  Arg.(value & flag
       & info [ "sample" ]
           ~doc:"Estimate predicate selectivities by sampling the data                  instead of textbook heuristics.")

(* ---- durability --------------------------------------------------- *)

let wal_arg =
  Arg.(value & opt (some string) None
       & info [ "wal" ] ~docv:"FILE"
           ~doc:"Enable durability: write-ahead-log all catalog mutations \
                 to $(docv), flushed at every commit.")

let snapshot_arg =
  Arg.(value & opt (some string) None
       & info [ "snapshot" ] ~docv:"FILE"
           ~doc:"Snapshot file used by checkpoints and recovery (default: \
                 the WAL file with a $(b,.snapshot) suffix).")

let recover_flag =
  Arg.(value & flag
       & info [ "recover" ]
           ~doc:"Rebuild the catalog from the snapshot and WAL instead of \
                 loading a demo database (requires $(b,--wal)).")

let durability_env ~wal ~snapshot =
  let snap =
    match snapshot with Some s -> s | None -> wal ^ ".snapshot"
  in
  Durability.Faultio.files () ~path:(fun store ->
      if store = Durability.Wal.store_name then wal
      else if store = Durability.Snapshot.store_name then snap
      else if store = Durability.Snapshot.tmp_name then snap ^ ".tmp"
      else wal ^ "." ^ store)

let print_warnings ws =
  List.iter (fun w -> Printf.eprintf "mrdb: warning: %s\n%!" w) ws

(* Demo catalog with durability attached, or a catalog recovered from the
   durable state; [k] runs with the catalog and the log is closed after. *)
let with_catalog db scale ~wal ~snapshot ~recover k =
  match wal with
  | None ->
      if recover then failwith "--recover requires --wal FILE";
      let cat, hier = load_db db scale in
      k cat hier
  | Some wal ->
      let env = durability_env ~wal ~snapshot in
      let hier, d =
        if recover then begin
          let hier = Memsim.Hierarchy.create () in
          let r, d = Durability.Durable.recover ~hier env in
          print_warnings r.Durability.Recover.warnings;
          Printf.eprintf
            "mrdb: recovered %d table(s), replayed %d transaction(s)\n%!"
            (List.length (Storage.Catalog.names r.Durability.Recover.cat))
            r.Durability.Recover.replayed;
          (hier, d)
        end
        else
          let cat, hier = load_db db scale in
          (hier, Durability.Durable.attach env cat)
      in
      Fun.protect
        ~finally:(fun () -> Durability.Durable.detach d)
        (fun () -> k (Durability.Durable.catalog d) hier)

let plan_of ~sample cat sql params =
  let logical = Relalg.Sql.parse cat sql in
  if sample then Relalg.Planner.plan ~sample_with:params cat logical
  else Relalg.Planner.plan cat logical

(* ---- metrics export ----------------------------------------------- *)

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"After the command, export the process metrics registry to \
                 $(docv): Prometheus text format if it ends in $(b,.prom), \
                 JSON otherwise.")

let export_metrics = function
  | None -> ()
  | Some path ->
      if Filename.check_suffix path ".prom" then begin
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Obs.Metrics.to_prometheus ()))
      end
      else Obs.Json.write_file path (Obs.Metrics.to_json ())

let run_cmd =
  let run db scale engine domains autotune shards sql params sample wal
      snapshot recover metrics =
    (with_catalog db scale ~wal ~snapshot ~recover @@ fun cat _hier ->
     let plan = plan_of ~sample cat sql (parse_params params) in
     match make_cluster ~shards cat with
     | Some cl ->
         Fun.protect
           ~finally:(fun () -> Shard.Cluster.close cl)
           (fun () ->
             let result, m =
               Shard.Exec.run_measured ~engine
                 ~params:(parse_params params) ~coord:cat cl plan
             in
             Format.printf "%a" Engines.Runtime.pp_result result;
             Printf.printf "-- %d rows (%d shards)\n"
               (List.length result.Engines.Runtime.rows)
               shards;
             print_stats m.Shard.Exec.stats;
             Printf.printf
               "-- net: %d message(s), %d byte(s), %d cycles; total with \
                interconnect: %d cycles\n"
               m.Shard.Exec.net_messages m.Shard.Exec.net_bytes
               m.Shard.Exec.net_cycles
               (Shard.Exec.total_cycles m))
     | None ->
     if autotune then begin
       let t0 = Unix.gettimeofday () in
       let result =
         Engines.Engine.run ~domains ~autotune:true engine cat plan
           ~params:(parse_params params)
       in
       let dt = Unix.gettimeofday () -. t0 in
       Format.printf "%a" Engines.Runtime.pp_result result;
       Printf.printf "-- %d rows\n" (List.length result.Engines.Runtime.rows);
       Printf.printf "-- %.6fs wall (untraced; morsel size %d)\n" dt
         (int_of_float
            (Obs.Metrics.gauge_value
               (Obs.Metrics.gauge "parallel_morsel_size")))
     end
     else begin
       let result, st =
         Engines.Engine.run_measured ~domains engine cat plan
           ~params:(parse_params params)
       in
       Format.printf "%a" Engines.Runtime.pp_result result;
       Printf.printf "-- %d rows\n" (List.length result.Engines.Runtime.rows);
       print_stats st
     end);
    export_metrics metrics
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a SQL statement and report simulated cycles.")
    Term.(
      const run $ db_arg $ scale_arg $ engine_arg $ domains_arg
      $ autotune_flag $ shards_arg $ sql_arg $ param_arg $ sample_flag
      $ wal_arg $ snapshot_arg $ recover_flag $ metrics_arg)

let checkpoint_cmd =
  let checkpoint wal snapshot =
    let env = durability_env ~wal ~snapshot in
    let r, d = Durability.Durable.recover env in
    print_warnings r.Durability.Recover.warnings;
    Durability.Durable.checkpoint d;
    Durability.Durable.detach d;
    Printf.printf
      "checkpointed %d table(s) (replayed %d transaction(s), watermark %d); \
       WAL truncated\n"
      (List.length (Storage.Catalog.names r.Durability.Recover.cat))
      r.Durability.Recover.replayed r.Durability.Recover.last_txid
  in
  let wal_req =
    Arg.(required & opt (some string) None
         & info [ "wal" ] ~docv:"FILE" ~doc:"Write-ahead-log file.")
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Fold the WAL into a fresh snapshot (recover, snapshot, truncate \
          the log).")
    Term.(const checkpoint $ wal_req $ snapshot_arg)

let analyze_flag =
  Arg.(value & flag
       & info [ "analyze" ]
           ~doc:"Also execute the plan on the selected engine and report \
                 memsim-measured per-operator cycles with the cost model's \
                 relative error (EXPLAIN ANALYZE).")

let compress_db_flag =
  Arg.(value & flag
       & info [ "compress" ]
           ~doc:"Apply the compression advisor's plan to every table before \
                 planning: the storage section shows the chosen scheme per \
                 partition and $(b,--analyze) surfaces the decode phases.")

let compress_all cat =
  List.iter
    (fun name ->
      let plan = Storage.Compress.plan (Storage.Catalog.find cat name) in
      if plan <> [] then Storage.Compress.apply cat name plan)
    (Storage.Catalog.names cat)

let advisor_flag =
  Arg.(value & flag
       & info [ "advisor" ]
           ~doc:"Append the layout advisor's section: the IP-optimal \
                 partitioning of every touched table if this query were the \
                 whole workload, with the projected saving, the copy cost \
                 and the repartition-or-keep verdict.")

let explain_cmd =
  let explain db scale engine domains shards sql params sample analyze
      advisor compress =
    let cat, _ = load_db db scale in
    if compress then compress_all cat;
    let params = parse_params params in
    let plan = plan_of ~sample cat sql params in
    let cluster = make_cluster ~shards cat in
    Fun.protect
      ~finally:(fun () -> Option.iter Shard.Cluster.close cluster)
      (fun () ->
        print_string
          (Obs_explain.render ~analyze ~advisor ~engine ~domains ~params
             ?cluster cat plan))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the physical plan with per-operator predicted cost, its \
          access-pattern program, (with $(b,--analyze)) the memsim-measured \
          per-operator cycles and relative error, and (with $(b,--advisor)) \
          the layout advisor's verdict for every touched table.")
    Term.(
      const explain $ db_arg $ scale_arg $ engine_arg $ domains_arg
      $ shards_arg $ sql_arg $ param_arg $ sample_flag $ analyze_flag
      $ advisor_flag $ compress_db_flag)

let codegen_cmd =
  let codegen db scale sql =
    let cat, _ = load_db db scale in
    let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
    print_string (Engines.C_emitter.emit cat plan)
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Render the C99 code the JiT compiler corresponds to (Fig. 2c).")
    Term.(const codegen $ db_arg $ scale_arg $ sql_arg)

let layout_cmd =
  let show db scale =
    let cat, _ = load_db db scale in
    List.iter
      (fun name ->
        let rel = Storage.Catalog.find cat name in
        let schema = Storage.Relation.schema rel in
        Format.printf "%-12s %-10s %a@." name
          (Storage.Layout.kind_label (Storage.Relation.layout rel))
          (Storage.Layout.pp schema)
          (Storage.Relation.layout rel))
      (Storage.Catalog.names cat)
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Show the stored layout of every table.")
    Term.(const show $ db_arg $ scale_arg)

(* build the workload together with its own catalog so queries and data
   always match *)
let load_workload ~cmd db scale =
  let hier = Memsim.Hierarchy.create () in
  match db with
  | "sd" ->
      let sd = Workloads.Sap_sd.build ~hier ~scale () in
      (sd.Workloads.Sap_sd.cat, sd.Workloads.Sap_sd.queries)
  | "ch" ->
      let ch = Workloads.Ch.build ~hier ~scale () in
      (ch.Workloads.Ch.cat, ch.Workloads.Ch.queries @ ch.Workloads.Ch.transactions)
  | "cnet" ->
      let cn =
        Workloads.Cnet.build ~hier
          ~n_products:(int_of_float (20_000.0 *. scale))
          ()
      in
      (cn.Workloads.Cnet.cat, cn.Workloads.Cnet.queries)
  | _ -> failwith (cmd ^ " supports --db sd, ch or cnet")

let optimize_cmd =
  let optimize db scale threshold compress apply =
    let cat, queries = load_workload ~cmd:"optimize" db scale in
    let wl = Workloads.Workload.plans ~use_indexes:false queries in
    let results =
      Layoutopt.Optimizer.optimize ~compress
        ~algorithm:(Layoutopt.Optimizer.Bpi threshold) cat wl
    in
    List.iter
      (fun (r : Layoutopt.Optimizer.table_result) ->
        let schema =
          Storage.Relation.schema (Storage.Catalog.find cat r.Layoutopt.Optimizer.table)
        in
        Format.printf "%-12s  est %.3g (row %.3g, column %.3g)@.  %a@."
          r.Layoutopt.Optimizer.table r.Layoutopt.Optimizer.estimated_cost
          r.Layoutopt.Optimizer.row_cost r.Layoutopt.Optimizer.column_cost
          (Storage.Layout.pp schema) r.Layoutopt.Optimizer.layout;
        List.iter
          (fun (a, e) ->
            Format.printf "    compress %s: %a@."
              (Storage.Schema.attr schema a).Storage.Schema.name
              Storage.Encoding.pp e)
          r.Layoutopt.Optimizer.encodings)
      results;
    if apply then begin
      Layoutopt.Optimizer.apply cat results;
      Format.printf "applied %d physical designs@." (List.length results)
    end
  in
  let threshold_arg =
    Arg.(value & opt float 0.005
         & info [ "t"; "threshold" ] ~docv:"T"
             ~doc:"BPi relative improvement threshold.")
  in
  let compress_arg =
    Arg.(value & flag
         & info [ "compress" ]
             ~doc:"Search jointly over decomposition and per-column \
                   compression (dictionary, RLE, frame-of-reference, null \
                   suppression).")
  in
  let apply_arg =
    Arg.(value & flag
         & info [ "apply" ]
             ~doc:"Repartition (and recompress) the stored tables to the \
                   chosen designs before exiting.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Run the BPi layout optimizer over the demo workload.")
    Term.(const optimize $ db_arg $ scale_arg $ threshold_arg $ compress_arg
          $ apply_arg)

let advise_cmd =
  let module Advisor = Layoutopt.Advisor in
  let print_recs cat recs =
    List.iter
      (fun (r : Advisor.recommendation) ->
        let schema =
          Storage.Relation.schema (Storage.Catalog.find cat r.Advisor.table)
        in
        Format.printf "%-12s %s  est %.3g -> %.3g  copy %.3g  net %.3g@."
          r.Advisor.table
          (if r.Advisor.profitable then "REPARTITION" else "keep")
          r.Advisor.current_cost r.Advisor.proposed_cost r.Advisor.copy_cost
          r.Advisor.net_saving;
        Format.printf "  %a -> %a@."
          (Storage.Layout.pp schema) r.Advisor.current_layout
          (Storage.Layout.pp schema) r.Advisor.proposed_layout)
      recs
  in
  let advise db scale bpi threshold apply watch metrics =
    let cat, queries = load_workload ~cmd:"advise" db scale in
    let wl = Workloads.Workload.plans ~use_indexes:false queries in
    let algorithm =
      if bpi then Layoutopt.Optimizer.Bpi threshold
      else Layoutopt.Optimizer.Ip
    in
    (match watch with
    | None ->
        let recs = Advisor.recommend ~algorithm cat wl in
        print_recs cat recs;
        if apply then begin
          let adv = Advisor.create ~algorithm cat in
          let applied = Advisor.apply adv recs in
          Format.printf "applied %d repartitions@." (List.length applied)
        end
    | Some rounds ->
        (* replay the demo mix through the observation window: the advisor
           repartitions online as its view of the workload fills in *)
        let adv =
          Advisor.create ~algorithm ~window:256 ~check_every:32 cat
        in
        for round = 1 to max 1 rounds do
          List.iter
            (fun (plan, freq) ->
              let reps = min 8 (max 1 (int_of_float freq)) in
              for _ = 1 to reps do
                List.iter
                  (fun (r : Advisor.recommendation) ->
                    Format.printf
                      "round %d: repartitioned %s (net saving %.3g)@." round
                      r.Advisor.table r.Advisor.net_saving)
                  (Advisor.observe adv plan)
              done)
            wl
        done;
        Format.printf "watched %d rounds: %d observations, %d repartitions@."
          (max 1 rounds)
          (Layoutopt.Workload.observed (Advisor.workload adv))
          (List.length (Advisor.applied adv)));
    export_metrics metrics
  in
  let bpi_flag =
    Arg.(value & flag
         & info [ "bpi" ]
             ~doc:"Advise with the BPi heuristic instead of the exact \
                   integer-programming solver.")
  in
  let ip_flag =
    (* the default; accepted so scripts can be explicit *)
    Arg.(value & flag
         & info [ "ip" ]
             ~doc:"Advise with the exact IP branch-and-bound solver \
                   (default).")
  in
  let threshold_arg =
    Arg.(value & opt float 0.005
         & info [ "t"; "threshold" ] ~docv:"T"
             ~doc:"BPi relative improvement threshold (with $(b,--bpi)).")
  in
  let apply_arg =
    Arg.(value & flag
         & info [ "apply" ]
             ~doc:"Repartition the stored tables to every profitable \
                   recommendation before exiting.")
  in
  let watch_arg =
    Arg.(value & opt ~vopt:(Some 8) (some int) None
         & info [ "watch" ] ~docv:"ROUNDS"
             ~doc:"Run the online advisor loop instead of one-shot advice: \
                   replay the demo mix $(docv) times (default 8) through \
                   the sliding observation window, repartitioning (and \
                   reporting) whenever the projected saving beats the copy \
                   cost.")
  in
  let advise_with_flags db scale bpi ip threshold apply watch metrics =
    if bpi && ip then failwith "advise: pick one of --ip and --bpi";
    advise db scale bpi threshold apply watch metrics
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Run the layout advisor over the demo workload: exact IP \
          partitioning per touched table, with projected savings weighed \
          against the reorganization copy cost.  One-shot by default; \
          $(b,--watch) runs the online loop.")
    Term.(const advise_with_flags $ db_arg $ scale_arg $ bpi_flag $ ip_flag
          $ threshold_arg $ apply_arg $ watch_arg $ metrics_arg)

let export_cmd =
  let table_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TABLE" ~doc:"Table name.")
  in
  let path_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Output CSV path.")
  in
  let export db scale table path =
    let cat, _ = load_db db scale in
    Storage.Csv.export (Storage.Catalog.find cat table) path;
    Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a demo table to CSV.")
    Term.(const export $ db_arg $ scale_arg $ table_arg $ path_arg)

let import_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Input CSV path.")
  in
  let name_arg =
    Arg.(value & opt string "imported"
         & info [ "n"; "name" ] ~docv:"NAME" ~doc:"Name for the created table.")
  in
  let sql_opt =
    Arg.(value & opt (some string) None
         & info [ "q"; "query" ] ~docv:"SQL" ~doc:"Query to run after loading.")
  in
  let import path name sql =
    let hier = Memsim.Hierarchy.create () in
    let cat = Storage.Catalog.create ~hier () in
    let rel = Storage.Csv.import_new cat ~name path in
    Format.printf "loaded %d rows into %s: %a@."
      (Storage.Relation.nrows rel) name Storage.Schema.pp
      (Storage.Relation.schema rel);
    match sql with
    | None -> ()
    | Some q ->
        let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat q) in
        let result, st =
          Engines.Engine.run_measured Engines.Engine.Jit cat plan ~params:[||]
        in
        Format.printf "%a" Engines.Runtime.pp_result result;
        print_stats st
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:"Load a CSV file into a fresh table (types inferred) and              optionally query it.")
    Term.(const import $ path_arg $ name_arg $ sql_opt)

let fuzz_cmd =
  let fuzz seed cases max_rows mutate no_recovery txn advisor shards clients
      quiet metrics =
    let log msg = if not quiet then Printf.eprintf "mrdb fuzz: %s\n%!" msg in
    if (if txn then 1 else 0) + (if advisor then 1 else 0)
       + (if shards > 1 then 1 else 0)
       > 1
    then begin
      prerr_endline
        "fuzz: --txn, --advisor and --shards are mutually exclusive";
      exit 2
    end;
    if shards > 1 then begin
      (* the sharded axis: every episode replays over an N-shard durable
         cluster; answers, final shard unions, and post-recovery digests
         must all match *)
      let failures =
        Fuzz.Harness.fuzz_shard ~max_rows ~log ~shards ~seed ~cases ()
      in
      export_metrics metrics;
      if failures = [] then
        Printf.printf
          "fuzz: %d case(s) from seed %d over %d shards: all answers, \
           shard unions and post-recovery digests match the oracle\n"
          cases seed shards
      else begin
        List.iter
          (fun r -> Format.printf "%a@." Fuzz.Harness.pp_report r)
          failures;
        Printf.printf "fuzz: %d of %d case(s) FAILED (seed %d)\n"
          (List.length failures) cases seed;
        exit 1
      end
    end
    else if advisor then begin
      (* the advisor axis: the layout advisor repartitions mid-episode;
         layout changes must never change answers *)
      let failures, repartitions =
        Fuzz.Harness.fuzz_advisor ~max_rows ~log ~seed ~cases ()
      in
      export_metrics metrics;
      if failures = [] then
        Printf.printf
          "fuzz: %d case(s) from seed %d with the online advisor in the \
           loop (%d mid-episode repartition(s)): all answers and final \
           states match the oracle\n"
          cases seed repartitions
      else begin
        List.iter
          (fun r -> Format.printf "%a@." Fuzz.Harness.pp_report r)
          failures;
        Printf.printf "fuzz: %d of %d case(s) FAILED (seed %d)\n"
          (List.length failures) cases seed;
        exit 1
      end
    end
    else if txn then begin
      (* the transaction axis: interleaved multi-client histories against
         the MVCC manager, checked against a serial oracle *)
      let failures =
        Fuzz.Txn_fuzz.fuzz ~max_clients:clients ~log ~seed ~cases ()
      in
      export_metrics metrics;
      if failures = [] then
        Printf.printf
          "fuzz: %d interleaved histories from seed %d: no divergences from \
           the serial oracle (snapshot isolation holds)\n"
          cases seed
      else begin
        List.iter
          (fun r -> Format.printf "%a@." Fuzz.Txn_fuzz.pp_report r)
          failures;
        Printf.printf "fuzz: %d of %d histories FAILED (seed %d)\n"
          (List.length failures) cases seed;
        exit 1
      end
    end
    else begin
      let failures =
        Fuzz.Harness.fuzz ~mutate ~recovery:(not no_recovery) ~max_rows ~log
          ~seed ~cases ()
      in
      export_metrics metrics;
      if failures = [] then
        Printf.printf
          "fuzz: %d case(s) from seed %d: no divergences across all engine x \
           layout x fastpath combinations\n"
          cases seed
      else begin
        List.iter
          (fun r -> Format.printf "%a@." Fuzz.Harness.pp_report r)
          failures;
        Printf.printf "fuzz: %d of %d case(s) FAILED (seed %d)\n"
          (List.length failures) cases seed;
        exit 1
      end
    end
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Base seed; case $(i,i) uses seed SEED+$(i,i), so any \
                   single case replays with $(b,--seed) (SEED+i) \
                   $(b,--cases) 1.")
  in
  let cases_arg =
    Arg.(value & opt int 100
         & info [ "cases" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let max_rows_arg =
    Arg.(value & opt int 120
         & info [ "max-rows" ] ~docv:"N"
             ~doc:"Upper bound on generated rows per table.")
  in
  let mutate_flag =
    Arg.(value & flag
         & info [ "mutate" ]
             ~doc:"Self-test: inject a comparison-weakening bug (Lt becomes \
                   Le) into one engine combination; the run should FAIL.")
  in
  let no_recovery_flag =
    Arg.(value & flag
         & info [ "no-recovery" ]
             ~doc:"Skip the WAL + crash-recovery digest check.")
  in
  let quiet_flag =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress output.")
  in
  let txn_flag =
    Arg.(value & flag
         & info [ "txn" ]
             ~doc:"Fuzz the transaction layer instead: interleaved \
                   multi-client histories against the MVCC manager, \
                   differentially checked against a serial oracle \
                   (SI-admissible equivalence).")
  in
  let advisor_fuzz_flag =
    Arg.(value & flag
         & info [ "advisor" ]
             ~doc:"Fuzz the layout advisor instead: replay each episode \
                   with the online advisor repartitioning tables \
                   mid-episode; results and final table contents must \
                   still match the oracle (layout changes never change \
                   answers).")
  in
  let clients_arg =
    Arg.(value & opt int 3
         & info [ "clients" ] ~docv:"N"
             ~doc:"With $(b,--txn): maximum concurrent clients per history.")
  in
  let shards_fuzz_arg =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Fuzz the sharded executor instead: replay each episode \
                   over an $(docv)-shard durable cluster (distributed \
                   plans, two-phase commit); answers, final shard unions \
                   and post-recovery digests must match the oracle.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generated schemas, data and episodes run \
          through every engine x layout x tracer-fastpath combination (plus \
          morsel-parallel execution, metamorphic predicate rewrites and \
          crash recovery) and must match a reference oracle.  Failures are \
          shrunk to a minimal OCaml repro.  With $(b,--txn), fuzzes \
          interleaved multi-client transaction histories against a serial \
          oracle instead; with $(b,--advisor), replays episodes with the \
          online layout advisor repartitioning mid-episode; with \
          $(b,--shards) N, replays episodes over a simulated N-shard \
          cluster with two-phase commit.")
    Term.(
      const fuzz $ seed_arg $ cases_arg $ max_rows_arg $ mutate_flag
      $ no_recovery_flag $ txn_flag $ advisor_fuzz_flag $ shards_fuzz_arg
      $ clients_arg $ quiet_flag $ metrics_arg)

let calibrate_cmd =
  let calibrate () =
    let params = Memsim.Params.nehalem in
    Format.printf "%a@.@." Memsim.Params.pp params;
    let pts = Memsim.Calibrator.run_random ~accesses:150_000 params in
    List.iter
      (fun (p : Memsim.Calibrator.point) ->
        Printf.printf "%10d B  %6.2f cycles/access\n"
          p.Memsim.Calibrator.region_bytes p.Memsim.Calibrator.cycles_per_access)
      pts;
    print_newline ();
    List.iter
      (fun (name, lat) -> Printf.printf "%-8s ~%d cycles\n" name lat)
      (Memsim.Calibrator.fit_latencies params pts)
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Run the configuring experiment (Fig. 8) and fit Table III.")
    Term.(const calibrate $ const ())

let main_cmd =
  let doc =
    "memory-resident DBMS with JiT execution and partially decomposed storage"
  in
  Cmd.group
    (Cmd.info "mrdb" ~version:Core.version ~doc)
    [
      run_cmd; explain_cmd; codegen_cmd; layout_cmd; optimize_cmd;
      advise_cmd; export_cmd; import_cmd; calibrate_cmd; checkpoint_cmd;
      fuzz_cmd;
    ]

(* User mistakes (malformed SQL, unknown tables, bad arguments) become a
   one-line diagnostic and a nonzero exit; anything else keeps its
   backtrace.  Taxonomy exceptions exit with their distinct codes
   (conflict 3, timeout 4, busy 5) so scripts can branch on the outcome. *)
let () =
  try exit (Cmd.eval ~catch:false main_cmd) with
  | Relalg.Sql.Parse_error msg ->
      Printf.eprintf "mrdb: %s\n" msg;
      exit 1
  | e -> (
      match Mrdb_util.Errors.to_diagnostic e with
      | Some msg ->
          Printf.eprintf "mrdb: %s\n" msg;
          exit (match Mrdb_util.Errors.exit_code_of e with Some c -> c | None -> 1)
      | None -> raise e)
