(* mrdb_server — the concurrent OLTP front door.

   A thin CLI over Txn.Server: one listening socket (unix-domain by
   default, TCP with --port), a domain-per-client accept loop, and the
   line protocol of Txn.Wire.  Commit points are durable when --wal is
   given: each MVCC commit is one transaction-framed, flushed WAL unit, so
   a crash recovers to a committed prefix via `mrdb_cli run --recover`.

   --smoke runs the whole stack in-process: N update clients (bank
   transfers with bounded retry + seeded exponential backoff) and M
   analytics clients (snapshot SUM/ROWS reads) hammer the server over real
   sockets; the invariants — conserved balance total on *every* snapshot
   read, transfer log length equal to committed transfers — are the
   divergence check CI asserts. *)

open Cmdliner
module Value = Storage.Value
module Server = Txn.Server

(* ------------------------------------------------------------------ *)
(* Database setup                                                     *)
(* ------------------------------------------------------------------ *)

(* The bank schema of the smoke workload: conserved total balance is the
   cross-client invariant every analytics snapshot asserts. *)
let bank_schema =
  Storage.Schema.make "acct" [ ("id", Value.Int); ("bal", Value.Int) ]

let xfer_schema =
  Storage.Schema.make "xfer"
    [ ("src", Value.Int); ("dst", Value.Int); ("amount", Value.Int) ]

let initial_balance = 100

let build_bank ~accounts () =
  let cat = Storage.Catalog.create () in
  let acct =
    Storage.Catalog.add cat bank_schema (Storage.Layout.row bank_schema)
  in
  for i = 0 to accounts - 1 do
    ignore
      (Storage.Relation.append acct [| Value.VInt i; Value.VInt initial_balance |])
  done;
  ignore (Storage.Catalog.add cat xfer_schema (Storage.Layout.row xfer_schema));
  cat

let load_db name scale ~accounts =
  match name with
  | "bank" -> build_bank ~accounts ()
  | "micro" ->
      Workloads.Microbench.build ~n:(int_of_float (200_000.0 *. scale)) ()
  | "sd" -> (Workloads.Sap_sd.build ~scale ()).Workloads.Sap_sd.cat
  | "ch" -> (Workloads.Ch.build ~scale ()).Workloads.Ch.cat
  | other -> failwith (Printf.sprintf "unknown database %S" other)

let attach_wal cat = function
  | None -> None
  | Some wal ->
      let env =
        Durability.Faultio.files () ~path:(fun store ->
            if store = Durability.Wal.store_name then wal
            else if store = Durability.Snapshot.store_name then wal ^ ".snapshot"
            else if store = Durability.Snapshot.tmp_name then
              wal ^ ".snapshot.tmp"
            else wal ^ "." ^ store)
      in
      Some (Durability.Durable.attach env cat)

let export_metrics = function
  | Some path -> Obs.Json.write_file path (Obs.Metrics.to_json ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Smoke mode: concurrent clients over real sockets, checked invariants *)
(* ------------------------------------------------------------------ *)

type client_stats = { client : int; committed : int; conflicts : int;
                      divergences : int }

let smoke_update_client ~addr ~transfers ~accounts ~seed i =
  let rng = Mrdb_util.Rng.create (seed + (1000 * i)) in
  let backoff = Txn.Backoff.create ~seed:(seed + i) () in
  let c = Txn.Client.connect ~id:(Printf.sprintf "upd%d" i) addr in
  let committed = ref 0 and conflicts = ref 0 in
  for _ = 1 to transfers do
    let src = Mrdb_util.Rng.int rng accounts in
    let dst = (src + 1 + Mrdb_util.Rng.int rng (accounts - 1)) mod accounts in
    let amount = 1 + Mrdb_util.Rng.int rng 5 in
    (* bounded retry with seeded exponential backoff at the client layer *)
    let rec attempt n =
      Txn.Client.begin_ c;
      match
        let bs = Value.to_int (Txn.Client.get c ~table:"acct" ~tid:src ~attr:1) in
        let bd = Value.to_int (Txn.Client.get c ~table:"acct" ~tid:dst ~attr:1) in
        Txn.Client.set c ~table:"acct" ~tid:src ~attr:1 (Value.VInt (bs - amount));
        Txn.Client.set c ~table:"acct" ~tid:dst ~attr:1 (Value.VInt (bd + amount));
        Txn.Client.insert c ~table:"xfer"
          [| Value.VInt src; Value.VInt dst; Value.VInt amount |];
        Txn.Client.commit c
      with
      | _ts -> incr committed
      | exception Mrdb_util.Errors.Txn_conflict _ ->
          incr conflicts;
          if n < 25 then begin
            ignore (Txn.Backoff.sleep backoff);
            attempt (n + 1)
          end
    in
    attempt 0
  done;
  Txn.Client.close c;
  { client = i; committed = !committed; conflicts = !conflicts; divergences = 0 }

let smoke_analytics_client ~addr ~reads ~accounts i =
  let c = Txn.Client.connect ~id:(Printf.sprintf "ana%d" i) addr in
  let divergences = ref 0 in
  let expected_total = accounts * initial_balance in
  for _ = 1 to reads do
    Txn.Client.begin_ c;
    (* one snapshot: the balance total must be conserved on every read,
       no matter how many transfers are in flight *)
    let total = Value.to_int (Txn.Client.sum c ~table:"acct" ~attr:1) in
    let rows = Txn.Client.rows c "acct" in
    if total <> expected_total then incr divergences;
    if rows <> accounts then incr divergences;
    Txn.Client.abort c
  done;
  Txn.Client.close c;
  { client = i; committed = 0; conflicts = 0; divergences = !divergences }

let run_smoke ~clients ~transfers ~accounts ~seed ~max_clients ~txn_timeout
    ~wal ~metrics =
  let cat = build_bank ~accounts () in
  let durable = attach_wal cat wal in
  let srv = Server.create ~max_clients ?txn_timeout (Txn.Mvcc.create cat) in
  let sock_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mrdb-smoke-%d.sock" (Unix.getpid ()))
  in
  let listen_fd = Server.listen_unix sock_path in
  let server_domain = Domain.spawn (fun () -> Server.accept_loop srv listen_fd) in
  let addr = Txn.Client.Unix_sock sock_path in
  let analytics = max 1 (clients / 2) in
  let updaters = max 1 (clients - analytics) in
  Printf.printf
    "smoke: %d updater(s) x %d transfers, %d analytics reader(s), %d \
     accounts, seed %d\n%!"
    updaters transfers analytics accounts seed;
  let upd_domains =
    List.init updaters (fun i ->
        Domain.spawn (fun () ->
            smoke_update_client ~addr ~transfers ~accounts ~seed i))
  in
  let ana_domains =
    List.init analytics (fun i ->
        Domain.spawn (fun () ->
            smoke_analytics_client ~addr ~reads:((transfers / 2) + 5) ~accounts i))
  in
  let upd = List.map Domain.join upd_domains in
  let ana = List.map Domain.join ana_domains in
  Server.stop srv;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Server.poke sock_path;
  Domain.join server_domain;
  (try Unix.unlink sock_path with Unix.Unix_error _ -> ());
  (* final divergence audit on the quiesced state *)
  let mgr = Server.mgr srv in
  let final_total =
    Txn.Mvcc.snapshot mgr (fun txn ->
        Array.fold_left
          (fun acc row -> acc + Value.to_int row.(1))
          0
          (Txn.Mvcc.scan txn "acct"))
  in
  let xfer_rows =
    Txn.Mvcc.snapshot mgr (fun txn -> Txn.Mvcc.visible_rows txn "xfer")
  in
  let committed_total = List.fold_left (fun a s -> a + s.committed) 0 upd in
  let conflict_total = List.fold_left (fun a s -> a + s.conflicts) 0 upd in
  let snapshot_divergences =
    List.fold_left (fun a s -> a + s.divergences) 0 ana
  in
  let audit_divergences =
    (if final_total <> accounts * initial_balance then 1 else 0)
    + if xfer_rows <> committed_total then 1 else 0
  in
  let divergences = snapshot_divergences + audit_divergences in
  List.iter
    (fun s ->
      Printf.printf "  upd%d: %d committed, %d conflict(s)\n" s.client
        s.committed s.conflicts)
    upd;
  List.iter
    (fun s ->
      Printf.printf "  ana%d: %d divergence(s)\n" s.client s.divergences)
    ana;
  Printf.printf
    "smoke: %d committed, %d conflicts, balance total %d (expected %d), \
     %d transfer rows, %d divergence(s)\n"
    committed_total conflict_total final_total
    (accounts * initial_balance)
    xfer_rows divergences;
  (match durable with Some d -> Durability.Durable.detach d | None -> ());
  export_metrics metrics;
  if divergences > 0 then begin
    Printf.eprintf "mrdb_server: smoke FAILED with %d divergence(s)\n"
      divergences;
    exit 1
  end;
  Printf.printf "smoke: clean shutdown, zero divergences\n"

(* ------------------------------------------------------------------ *)
(* Serve mode                                                         *)
(* ------------------------------------------------------------------ *)

let run_serve ~db ~scale ~accounts ~socket ~port ~max_clients ~txn_timeout
    ~wal ~metrics =
  let cat = load_db db scale ~accounts in
  let durable = attach_wal cat wal in
  let srv = Server.create ~max_clients ?txn_timeout (Txn.Mvcc.create cat) in
  let listen_fd, where =
    match port with
    | Some p -> (Server.listen_tcp p, Printf.sprintf "127.0.0.1:%d" p)
    | None -> (Server.listen_unix socket, socket)
  in
  let shutdown _ =
    Server.stop srv;
    try Unix.close listen_fd with Unix.Unix_error _ -> ()
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
  Printf.printf "mrdb_server: serving %s on %s (max %d clients%s%s)\n%!" db
    where max_clients
    (match txn_timeout with
    | Some t -> Printf.sprintf ", txn timeout %gs" t
    | None -> "")
    (match wal with Some w -> ", wal " ^ w | None -> "");
  Server.accept_loop srv listen_fd;
  (match durable with Some d -> Durability.Durable.detach d | None -> ());
  export_metrics metrics;
  Printf.printf "mrdb_server: clean shutdown\n"

(* ------------------------------------------------------------------ *)
(* CLI                                                                *)
(* ------------------------------------------------------------------ *)

let main db scale accounts socket port max_clients txn_timeout wal metrics
    smoke clients transfers seed =
  if smoke then
    run_smoke ~clients ~transfers ~accounts ~seed ~max_clients ~txn_timeout
      ~wal ~metrics
  else
    run_serve ~db ~scale ~accounts ~socket ~port ~max_clients ~txn_timeout
      ~wal ~metrics

let cmd =
  let db =
    Arg.(value & opt string "bank"
         & info [ "d"; "db" ] ~docv:"DB"
             ~doc:"Database to serve: bank (synthetic accounts), micro, sd, ch.")
  in
  let scale =
    Arg.(value & opt float 0.2
         & info [ "s"; "scale" ] ~docv:"SCALE"
             ~doc:"Demo-database scale factor.")
  in
  let accounts =
    Arg.(value & opt int 32
         & info [ "accounts" ] ~docv:"N" ~doc:"Rows in the bank table.")
  in
  let socket =
    Arg.(value & opt string "/tmp/mrdb.sock"
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to listen on.")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Listen on 127.0.0.1:$(docv) instead of the unix socket.")
  in
  let max_clients =
    Arg.(value & opt int 8
         & info [ "max-clients" ] ~docv:"N"
             ~doc:"Admission gate: connections past $(docv) concurrent \
                   clients are shed with ERR BUSY.")
  in
  let txn_timeout =
    Arg.(value & opt (some float) (Some 5.0)
         & info [ "txn-timeout" ] ~docv:"SECONDS"
             ~doc:"Per-transaction deadline; an expired transaction aborts \
                   with ERR TIMEOUT at its next operation.")
  in
  let wal =
    Arg.(value & opt (some string) None
         & info [ "wal" ] ~docv:"FILE"
             ~doc:"Write-ahead-log commits to $(docv); every MVCC commit is \
                   one flushed WAL transaction.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Export the metrics registry (per-client latency \
                   histograms included) on shutdown.")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Self-test: run the server in-process and hammer it with \
                   concurrent update + analytics clients over real sockets; \
                   exit nonzero on any divergence.")
  in
  let clients =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N"
             ~doc:"Smoke mode: total concurrent clients (half analytics).")
  in
  let transfers =
    Arg.(value & opt int 50
         & info [ "transfers" ] ~docv:"N"
             ~doc:"Smoke mode: committed transfers per update client.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Smoke mode: workload and backoff seed.")
  in
  Cmd.v
    (Cmd.info "mrdb_server" ~version:Core.version
       ~doc:"Concurrent MVCC transaction server for mrdb")
    Term.(
      const main $ db $ scale $ accounts $ socket $ port $ max_clients
      $ txn_timeout $ wal $ metrics $ smoke $ clients $ transfers $ seed)

let () =
  try exit (Cmd.eval ~catch:false cmd) with
  | e -> (
      match Mrdb_util.Errors.exit_code_of e with
      | Some code ->
          Printf.eprintf "mrdb_server: %s\n"
            (match Mrdb_util.Errors.to_diagnostic e with
            | Some m -> m
            | None -> Printexc.to_string e);
          exit code
      | None -> raise e)
