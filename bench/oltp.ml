(* OLTP front-door benchmark: concurrent bank transfers through the MVCC
   manager at 1/2/4 client domains.

   Each client runs a fixed number of committed transfer transactions
   (read two balances, write them back shifted) against a shared account
   table, retrying conflicts with its own seeded backoff.  Reported per
   client count:

     committed txns/sec   total committed transfers / wall time
     abort rate           conflicts / (commits + conflicts)
     p50 / p99 latency    per-transaction wall time, first begin to
                          successful commit (retries included), estimated
                          from a pooled latency histogram

   The container may have a single CPU, so no gate assumes multi-client
   scaling — throughput floors and abort-rate ceilings only. *)

module V = Storage.Value
module Catalog = Storage.Catalog
module Schema = Storage.Schema
module Layout = Storage.Layout
module Relation = Storage.Relation
module Rng = Mrdb_util.Rng
module Errors = Mrdb_util.Errors
module Mvcc = Txn.Mvcc

let accounts = 64
let init_balance = 100

let build_bank () =
  let cat = Catalog.create () in
  let schema = Schema.make "acct" [ ("id", V.Int); ("bal", V.Int) ] in
  let rel = Catalog.add cat schema (Layout.row schema) in
  for i = 0 to accounts - 1 do
    ignore (Relation.append rel [| V.VInt i; V.VInt init_balance |])
  done;
  cat

let vint = function
  | V.VInt n -> n
  | v -> failwith ("oltp: expected int, got " ^ V.to_display v)

(* One transfer attempt inside an open transaction. *)
let transfer txn rng =
  let src = Rng.int rng accounts in
  let dst = (src + 1 + Rng.int rng (accounts - 1)) mod accounts in
  let amount = 1 + Rng.int rng 10 in
  let sb = vint (Mvcc.read txn "acct" src 1) in
  let db = vint (Mvcc.read txn "acct" dst 1) in
  Mvcc.update txn "acct" src 1 (V.VInt (sb - amount));
  Mvcc.update txn "acct" dst 1 (V.VInt (db + amount))

type client_stats = { mutable commits : int; mutable conflicts : int }

(* Run [n_clients] domains for [per_client] committed transfers each.
   Returns (wall seconds, commits, conflicts, latency histogram name). *)
let run_round ~n_clients ~per_client =
  let cat = build_bank () in
  let mgr = Mvcc.create cat in
  let hist_name = Printf.sprintf "mrdb_oltp_latency_%dc_seconds" n_clients in
  let hist =
    Obs.Metrics.histogram hist_name
      ~help:"Per-transaction latency, begin to successful commit"
  in
  let client ci =
    let rng = Rng.create (0xB41 + (1000 * n_clients) + ci) in
    let backoff = Txn.Backoff.create ~seed:(0xACE + ci) () in
    let st = { commits = 0; conflicts = 0 } in
    while st.commits < per_client do
      let t0 = Unix.gettimeofday () in
      let committed = ref false in
      while not !committed do
        match
          Mvcc.run ~retries:0 mgr (fun txn -> transfer txn rng)
        with
        | () -> committed := true
        | exception Errors.Txn_conflict _ ->
            st.conflicts <- st.conflicts + 1;
            ignore (Txn.Backoff.sleep backoff)
      done;
      st.commits <- st.commits + 1;
      Obs.Metrics.observe hist (Unix.gettimeofday () -. t0)
    done;
    st
  in
  let t0 = Unix.gettimeofday () in
  let stats =
    if n_clients = 1 then [| client 0 |]
    else
      Array.map Domain.join
        (Array.init n_clients (fun ci -> Domain.spawn (fun () -> client ci)))
  in
  let wall = Unix.gettimeofday () -. t0 in
  let commits = Array.fold_left (fun a s -> a + s.commits) 0 stats in
  let conflicts = Array.fold_left (fun a s -> a + s.conflicts) 0 stats in
  (* sanity: money is conserved under any interleaving *)
  let total =
    Mvcc.snapshot mgr (fun txn ->
        Array.fold_left
          (fun a row -> a + vint row.(1))
          0 (Mvcc.scan txn "acct"))
  in
  assert (total = accounts * init_balance);
  (wall, commits, conflicts, hist)

let run () =
  Common.header "OLTP: concurrent transfers through the MVCC front door";
  let scale = Common.scale_env "MRDB_BENCH_SCALE" 1.0 in
  let per_client = max 50 (int_of_float (1000. *. scale)) in
  let points = ref [] in
  let pt ~n metric ?unit_ v =
    points :=
      Common.pt ~bench:"oltp"
        ~metric:(Printf.sprintf "clients.%d.%s" n metric)
        ?unit_ v
      :: !points
  in
  List.iter
    (fun n ->
      let wall, commits, conflicts, hist =
        run_round ~n_clients:n ~per_client
      in
      let tps = float_of_int commits /. wall in
      let abort_rate =
        float_of_int conflicts /. float_of_int (commits + conflicts)
      in
      let p50 = Obs.Metrics.percentile hist 50. in
      let p99 = Obs.Metrics.percentile hist 99. in
      Common.note
        "%d client(s): %d commits, %d conflicts in %.3fs — %s txn/s, \
         abort rate %.3f, p50 %.0fus, p99 %.0fus"
        n commits conflicts wall
        (Common.pow10_label tps)
        abort_rate (p50 *. 1e6) (p99 *. 1e6);
      pt ~n "txns_per_sec" ~unit_:"txn/s" tps;
      pt ~n "abort_rate" abort_rate;
      pt ~n "p50_seconds" ~unit_:"s" p50;
      pt ~n "p99_seconds" ~unit_:"s" p99)
    [ 1; 2; 4 ];
  Common.write_bench "BENCH_oltp.json" (List.rev !points)
