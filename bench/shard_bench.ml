(* Scale-out benchmark: network traffic and simulated cycles of the
   distributed executor at 1/2/4/8 shards.

   Two query shapes over a synthetic star schema:

     agg   a grouped aggregation over the fact table — partial
           aggregation ships one decomposed group row per shard-group
           instead of every input row; the reported [bytes_reduction] is
           naive-row-shuffle bytes over measured bytes and must stay > 1;
     join  a small dimension joined to the fat fact table — the cost
           model prices shuffle and broadcast in the same simulated-cycle
           currency as local cache traffic and must pick the cheaper
           ([chosen_optimal]); [exchange_bytes_reduction] compares the
           naive both-sides-shuffle estimate against the chosen exchange's
           estimate (measured [net_bytes] also includes shipping the join
           RESULT to the coordinator, which no exchange choice can avoid,
           so the exchange saving is reported on the model's own terms).

   Simulated cycles ([Exec.total_cycles]: slowest shard plus the
   interconnect) are reported per shard count so the trajectory shows how
   the cluster trades network traffic for per-node cache locality. *)

module V = Storage.Value
module Catalog = Storage.Catalog
module Schema = Storage.Schema
module Layout = Storage.Layout
module Relation = Storage.Relation
module Expr = Relalg.Expr
module Plan = Relalg.Plan
module Cluster = Shard.Cluster
module Exec = Shard.Exec
module Cost = Shard.Cost

let fact_rows = 6_000
let dim_rows = 40

let build () =
  let cat = Catalog.create () in
  let fact_schema =
    Schema.make "fact"
      [ ("id", V.Int); ("dim_id", V.Int); ("grp", V.Int); ("amount", V.Int) ]
  in
  let dim_schema = Schema.make "dim" [ ("id", V.Int); ("weight", V.Int) ] in
  let fact = Catalog.add cat fact_schema (Layout.row fact_schema) in
  let dim = Catalog.add cat dim_schema (Layout.row dim_schema) in
  Relation.load fact ~n:fact_rows (fun ~row ->
      [|
        V.VInt row; V.VInt (row mod dim_rows); V.VInt (row mod 24);
        V.VInt (row * 7 mod 1009);
      |]);
  Relation.load dim ~n:dim_rows (fun ~row ->
      [| V.VInt row; V.VInt (row * 11) |]);
  cat

let agg_plan cat =
  Relalg.Planner.plan cat
    (Plan.Group_by
       {
         child = Plan.Scan "fact";
         keys = [ (Expr.Col 2, "grp") ];
         aggs =
           [
             Relalg.Aggregate.(make Sum ~expr:(Expr.Col 3) "s");
             Relalg.Aggregate.(make Count_star "n");
           ];
       })

let join_plan cat =
  Relalg.Planner.plan cat
    (Plan.Join
       {
         left = Plan.Scan "dim";
         right = Plan.Scan "fact";
         left_keys = [ 0 ];
         right_keys = [ 1 ];
       })

let run () =
  Common.header "Scale-out: exchange traffic and simulated cycles per shard count";
  let cat = build () in
  let points = ref [] in
  let pt ~shards shape metric ?unit_ v =
    points :=
      Common.pt ~bench:"shard"
        ~metric:(Printf.sprintf "%s.x%d.%s" shape shards metric)
        ?unit_ v
      :: !points
  in
  List.iter
    (fun shards ->
      let cl = Cluster.create ~shards cat in
      Fun.protect
        ~finally:(fun () -> Cluster.close cl)
        (fun () ->
          (* grouped aggregation: partial vs naive row shuffle *)
          let gb = agg_plan cat in
          let child =
            match gb with
            | Relalg.Physical.Group_by { child; _ } -> child
            | _ -> assert false
          in
          let est = Cost.agg_costing cl ~child ~gb in
          let _, m = Exec.run_measured cl gb in
          pt ~shards "agg" "net_bytes" ~unit_:"B" (float_of_int m.Exec.net_bytes);
          pt ~shards "agg" "net_messages" (float_of_int m.Exec.net_messages);
          pt ~shards "agg" "sim_cycles" ~unit_:"cyc"
            (float_of_int (Exec.total_cycles m));
          if shards > 1 then begin
            let reduction =
              float_of_int est.Cost.naive_bytes /. float_of_int (max 1 m.Exec.net_bytes)
            in
            pt ~shards "agg" "naive_bytes" ~unit_:"B"
              (float_of_int est.Cost.naive_bytes);
            pt ~shards "agg" "bytes_reduction" reduction;
            Common.note
              "agg  x%d: %7d B on the wire (naive %8d B, %5.1fx less), %7d sim cycles"
              shards m.Exec.net_bytes est.Cost.naive_bytes reduction
              (Exec.total_cycles m)
          end
          else
            Common.note "agg  x1: %7d B on the wire, %7d sim cycles"
              m.Exec.net_bytes (Exec.total_cycles m);
          (* dimension join: cost-chosen exchange vs naive both-sides shuffle *)
          let jp = join_plan cat in
          let build_p, probe_p =
            match jp with
            | Relalg.Physical.Hash_join { build; probe; _ } -> (build, probe)
            | _ -> assert false
          in
          let jc = Cost.join_costing cl ~build:build_p ~probe:probe_p in
          let _, m = Exec.run_measured cl jp in
          pt ~shards "join" "net_bytes" ~unit_:"B" (float_of_int m.Exec.net_bytes);
          pt ~shards "join" "sim_cycles" ~unit_:"cyc"
            (float_of_int (Exec.total_cycles m));
          if shards > 1 then begin
            let chosen_cycles, chosen_bytes =
              match jc.Cost.chosen with
              | Cost.Broadcast -> (jc.Cost.broadcast_cycles, jc.Cost.broadcast_bytes)
              | Cost.Shuffle -> (jc.Cost.shuffle_cycles, jc.Cost.shuffle_bytes)
            in
            let optimal =
              chosen_cycles <= min jc.Cost.broadcast_cycles jc.Cost.shuffle_cycles
            in
            let reduction =
              float_of_int jc.Cost.shuffle_bytes /. float_of_int (max 1 chosen_bytes)
            in
            pt ~shards "join" "shuffle_bytes_est" ~unit_:"B"
              (float_of_int jc.Cost.shuffle_bytes);
            pt ~shards "join" "broadcast_bytes_est" ~unit_:"B"
              (float_of_int jc.Cost.broadcast_bytes);
            pt ~shards "join" "chosen_optimal" (if optimal then 1. else 0.);
            pt ~shards "join" "exchange_bytes_reduction" reduction;
            Common.note
              "join x%d: %s chosen, exchange %7d B (row shuffle %8d B, \
               %5.1fx less); %7d B total on the wire, %7d sim cycles"
              shards
              (Cost.method_name jc.Cost.chosen)
              chosen_bytes jc.Cost.shuffle_bytes reduction m.Exec.net_bytes
              (Exec.total_cycles m)
          end
          else
            Common.note "join x1: %7d B on the wire, %7d sim cycles"
              m.Exec.net_bytes (Exec.total_cycles m)))
    [ 1; 2; 4; 8 ];
  Common.write_bench "BENCH_shard.json" (List.rev !points)
