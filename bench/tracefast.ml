(* Trace fast path: run-batched access tracing (Hierarchy.read_run/write_run
   through Buffer and the engines) against the reference per-word
   decomposition, on identical access streams.

   Two sections:

   - per engine, the traced microbench scan-aggregate with the fast path on
     vs. off, asserting that rows and every simulated counter are identical
     and reporting traced values/second both ways;

   - the ISSUE's four acceptance experiments (adaptive, ablations, fig9,
     fig11) wall-clocked end-to-end with the fast path toggled process-wide
     via MEMSIM_FASTPATH.

   Each measured run builds its own hierarchy and catalog: a measured run
   allocates intermediates from the catalog's arena, so repeated runs see
   different absolute addresses — and thus different cache set indices —
   making even two identical runs drift by a conflict miss.  Fresh
   deterministic builds put both paths on byte-identical address streams
   (see test/test_tracefast.ml).

   Results go to BENCH_trace_fastpath.json.  MRDB_TRACEFAST_QUICK=1 skips
   the experiment sweep (the adaptive experiment alone takes tens of
   seconds per path). *)

let n_rows = 100_000
let sel = 0.1
let repeats = 3

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type engine_row = {
  engine : string;
  fast_s : float;
  slow_s : float;
  accesses : int;
  identical : bool;
}

(* One traced run on a fresh deterministic catalog; only the measured query
   is timed (build and repartition are setup). *)
let run_once ~fastpath engine =
  let hier = Memsim.Hierarchy.create () in
  Memsim.Hierarchy.set_fastpath hier fastpath;
  let cat = Workloads.Microbench.build ~hier ~n:n_rows () in
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let plan = Workloads.Microbench.plan cat ~sel in
  let params = Workloads.Microbench.params ~sel in
  wall (fun () -> Engines.Engine.run_measured engine cat plan ~params)

let best_of ~fastpath engine =
  let (r0, st0), t0 = run_once ~fastpath engine in
  let best = ref t0 in
  for _ = 2 to repeats do
    let _, t = run_once ~fastpath engine in
    if t < !best then best := t
  done;
  (r0, st0, !best)

let measure_engine engine =
  let name = Engines.Engine.name engine in
  let r_fast, st_fast, t_fast = best_of ~fastpath:true engine in
  let r_slow, st_slow, t_slow = best_of ~fastpath:false engine in
  let rows_equal =
    List.length r_fast.Engines.Runtime.rows
      = List.length r_slow.Engines.Runtime.rows
    && List.for_all2
         (fun a b ->
           Array.for_all2 (fun x y -> Storage.Value.compare x y = 0) a b)
         r_fast.Engines.Runtime.rows r_slow.Engines.Runtime.rows
  in
  let identical = rows_equal && st_fast = st_slow in
  if not identical then
    failwith
      (Printf.sprintf
         "tracefast: %s diverged between fast and slow tracing (rows_equal=%b)"
         name rows_equal);
  {
    engine = name;
    fast_s = t_fast;
    slow_s = t_slow;
    accesses = st_fast.Memsim.Stats.accesses;
    identical;
  }

let experiments =
  [
    ("ablations", Ablations.run);
    ("fig9", Fig9.run);
    ("fig11", Fig11.run);
    ("adaptive", Adaptive.run);
  ]

(* End-to-end wall clock against the seed build (commit 89a6026, the state
   before run-batched tracing), which this harness cannot rebuild at run
   time.  Measured offline on this machine as medians of N interleaved
   seed/new runs (the container's wall clock is noisy, so seed and new
   binaries alternate within one block and medians are compared).  The
   MEMSIM_FASTPATH toggle above isolates only the tracer itself — the
   engine-layer restructuring that rode on the run API (unboxed run reads,
   hoisted aggregation loops, generator/load/repartition fast paths) speeds
   both toggle positions, so the toggle understates the change; these
   numbers are the whole change. *)
let vs_seed =
  [
    ("ablations", 1.574, 0.745, 11);
    ("fig9", 1.788, 0.926, 9);
    ("fig11", 1.382, 0.931, 9);
    ("adaptive", 27.277, 11.981, 3);
  ]

let time_experiment ~fastpath run =
  (* the experiments build their own hierarchies, which read MEMSIM_FASTPATH
     at creation time *)
  Unix.putenv "MEMSIM_FASTPATH" (if fastpath then "1" else "0");
  let (), t = wall run in
  Unix.putenv "MEMSIM_FASTPATH" "1";
  t

let run () =
  Common.header "Trace fast path — run-batched vs. per-word access tracing";
  Common.note
    "microbench scan-aggregate, %d rows, sel %.0f%%, PDSM layout; best of %d"
    n_rows (100. *. sel) repeats;
  let rows = List.map measure_engine Engines.Engine.all in
  Printf.printf "  %-12s %10s %10s %8s %14s %14s\n" "engine" "fast (ms)"
    "slow (ms)" "speedup" "Mvalues/s fast" "Mvalues/s slow";
  List.iter
    (fun r ->
      Printf.printf "  %-12s %10.2f %10.2f %7.2fx %14.2f %14.2f\n" r.engine
        (1000. *. r.fast_s) (1000. *. r.slow_s) (r.slow_s /. r.fast_s)
        (float_of_int r.accesses /. r.fast_s /. 1e6)
        (float_of_int r.accesses /. r.slow_s /. 1e6))
    rows;
  Common.note
    "all engines: rows and every simulated counter identical on both paths";
  let quick =
    match Sys.getenv_opt "MRDB_TRACEFAST_QUICK" with
    | Some "1" -> true
    | _ -> false
  in
  let experiment_rows =
    if quick then []
    else
      List.map
        (fun (name, r) ->
          let t_fast = time_experiment ~fastpath:true r in
          let t_slow = time_experiment ~fastpath:false r in
          (name, t_fast, t_slow))
        experiments
  in
  if not quick then begin
    Common.header "Experiment wall-clock, fast path on vs. off";
    List.iter
      (fun (name, tf, ts) ->
        Common.note "%-10s fastpath %7.2fs   per-word %7.2fs   (%.2fx)" name
          tf ts (ts /. tf))
      experiment_rows;
    Common.header "Experiment wall-clock vs. seed build (offline medians)";
    List.iter
      (fun (name, seed_s, new_s, pairs) ->
        Common.note "%-10s seed %7.2fs   now %7.2fs   (%.2fx, %d pairs)" name
          seed_s new_s (seed_s /. new_s) pairs)
      vs_seed
  end;
  (* [vs_seed] numbers compare the whole change against the pre-batching
     build (commit 89a6026), as medians of interleaved seed/new runs; the
     MEMSIM_FASTPATH toggle isolates the tracer only and understates the
     engine-layer part of the change. *)
  let bench = "trace_fastpath" in
  let pt = Common.pt ~bench in
  Common.write_bench "BENCH_trace_fastpath.json"
    ([
       pt ~metric:"rows" ~unit_:"rows" (float_of_int n_rows);
       pt ~metric:"selectivity" sel;
       pt ~metric:"repeats" (float_of_int repeats);
     ]
    @ List.concat_map
        (fun r ->
          let m name = Printf.sprintf "engine.%s.%s" r.engine name in
          [
            pt ~metric:(m "fast_seconds") ~unit_:"s" r.fast_s;
            pt ~metric:(m "slow_seconds") ~unit_:"s" r.slow_s;
            pt ~metric:(m "speedup") ~unit_:"x" (r.slow_s /. r.fast_s);
            pt ~metric:(m "accesses") (float_of_int r.accesses);
            pt
              ~metric:(m "traced_values_per_sec_fast")
              (float_of_int r.accesses /. r.fast_s);
            pt
              ~metric:(m "traced_values_per_sec_slow")
              (float_of_int r.accesses /. r.slow_s);
            pt
              ~metric:(m "counters_identical")
              ~unit_:"bool"
              (if r.identical then 1. else 0.);
          ])
        rows
    @ List.concat_map
        (fun (name, tf, ts) ->
          let m k = Printf.sprintf "experiment.%s.%s" name k in
          [
            pt ~metric:(m "fastpath_seconds") ~unit_:"s" tf;
            pt ~metric:(m "perword_seconds") ~unit_:"s" ts;
            pt ~metric:(m "speedup") ~unit_:"x" (ts /. tf);
          ])
        experiment_rows
    @ List.concat_map
        (fun (name, seed_s, new_s, pairs) ->
          let m k = Printf.sprintf "vs_seed.%s.%s" name k in
          [
            pt ~metric:(m "seed_seconds") ~unit_:"s" seed_s;
            pt ~metric:(m "new_seconds") ~unit_:"s" new_s;
            pt ~metric:(m "speedup") ~unit_:"x" (seed_s /. new_s);
            pt ~metric:(m "interleaved_pairs") (float_of_int pairs);
          ])
        vs_seed)
