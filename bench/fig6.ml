(* Fig. 6: prediction accuracy of the s_trav_cr atom vs. the rr_acc
   workaround.  A selective projection over the {B,C,D,E} partition is
   executed with only that partition's accesses traced; the measured
   sequential (prefetched) and random (demand) LLC misses are compared to
   Equations (2)/(3) and to the rr_acc estimate, normalized by the number of
   lines in the region. *)

let selectivities =
  [ 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.3; 0.5; 0.75; 1.0 ]

let run () =
  Common.header
    "Fig. 6 — s_trav_cr prediction accuracy (fraction of region lines)";
  let n = int_of_float (Common.scale_env "MRDB_FIG6_N" 400_000.0) in
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n () in
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let rel = Storage.Catalog.find cat "R" in
  let params = Memsim.Hierarchy.params hier in
  let line = Memsim.Params.line_size params in
  (* the {B..E} partition: 4 ints => 32 bytes per tuple *)
  let part = Storage.Relation.part_of_attr rel 1 in
  let w = Storage.Relation.part_width rel part in
  let region_lines = float_of_int (n * w / line) in
  let tab =
    Common.Texttab.create
      [
        "s"; "pred seq"; "meas seq"; "pred rand"; "meas rand"; "rr_acc pred";
      ]
  in
  List.iter
    (fun s ->
      (* drive the conditional read directly (predicate column untraced so
         the counters contain only the projection region) *)
      (* cold caches per selectivity point; the counters themselves are
         read through a scoped section rather than off the global reset *)
      Memsim.Hierarchy.reset hier;
      let threshold =
        int_of_float (s *. float_of_int Workloads.Microbench.domain)
      in
      let matched = ref 0 in
      let (), st =
        Memsim.Hierarchy.section hier (fun () ->
            for tid = 0 to n - 1 do
              Memsim.Hierarchy.set_enabled hier false;
              let a = Storage.Value.to_int (Storage.Relation.get rel tid 0) in
              Memsim.Hierarchy.set_enabled hier true;
              if a < threshold then begin
                incr matched;
                for attr = 1 to 4 do
                  ignore (Storage.Relation.get rel tid attr)
                done
              end
            done)
      in
      let meas_seq = float_of_int st.Memsim.Stats.llc_seq_misses /. region_lines in
      let meas_rand =
        float_of_int st.Memsim.Stats.llc_rand_misses /. region_lines
      in
      let atom = Costmodel.Pattern.S_trav_cr { n; w; u = w; s } in
      let m = Costmodel.Miss_model.atom_misses params atom in
      let llc = m.Costmodel.Miss_model.levels.(2) in
      let pred_seq = llc.Costmodel.Miss_model.seq /. region_lines in
      let pred_rand = llc.Costmodel.Miss_model.rand /. region_lines in
      let rr_atom =
        Costmodel.Pattern.Rr_acc { n; w; u = w; r = !matched }
      in
      let rr = Costmodel.Miss_model.atom_misses params rr_atom in
      let rr_total =
        rr.Costmodel.Miss_model.levels.(2).Costmodel.Miss_model.total
        /. region_lines
      in
      Common.Texttab.row tab
        [
          Printf.sprintf "%.3f" s;
          Printf.sprintf "%.3f" pred_seq;
          Printf.sprintf "%.3f" meas_seq;
          Printf.sprintf "%.3f" pred_rand;
          Printf.sprintf "%.3f" meas_rand;
          Printf.sprintf "%.3f" rr_total;
        ])
    selectivities;
  Common.Texttab.print tab;
  Common.note
    "expected shape: seq misses grow with s toward 1.0; rand misses peak at \
     low-mid s then decline; rr_acc underestimates total misses and cannot \
     distinguish the two kinds"
