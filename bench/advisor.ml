(* Layout advisor v2: the online IP advisor against static extremes on a
   two-phase shifting workload.

   Phase 1 is OLTP-ish — indexed tuple fetches (~100 matching rows, all
   columns), which favour the row store: under DSM every fetched tuple
   pays one random access per partition, 16x the pointer chasing.  Phase 2
   drifts to wide analytical scans — a selective aggregation over a few
   columns, which favours decomposition.  A static layout is wrong in one
   of the two phases; the advisor observes the drift through its sliding
   window and repartitions when the projected saving beats the copy cost,
   which it is charged for explicitly.

   Gate: the online advisor must beat BOTH static NSM and static DSM
   end-to-end (BENCH_advisor.json, advisor/* gates). *)

module V = Storage.Value
module Advisor = Layoutopt.Advisor

let run () =
  Common.header
    "Extension — IP layout advisor vs static NSM/DSM on a shifting workload";
  let n = int_of_float (100_000.0 *. Common.scale_env "MRDB_BENCH_SCALE" 1.0) in
  let n = max 10_000 n in
  let oltp_len = 1200 in
  let scan_len = 200 in
  let sel = 0.02 in
  let build () =
    let hier = Memsim.Hierarchy.create () in
    let cat = Workloads.Microbench.build ~hier ~n () in
    (* the OLTP phase is indexed: point reads are true point accesses *)
    Storage.Catalog.create_index cat "R" ~name:"r_b" ~kind:Storage.Index.Hash
      ~attrs:[ "B" ];
    cat
  in
  (* B holds ~1000 distinct values: the indexed equality fetches ~n/1000
     whole tuples through the index — point accesses, not a scan *)
  let point_plan cat =
    Relalg.Planner.plan
      ~estimate:(fun _ -> Some 0.001)
      cat
      (Relalg.Sql.parse cat "select * from R where B = $1")
  in
  let scan_plan cat = Workloads.Microbench.plan cat ~sel in
  let run_episode ~layout ~advisor =
    let cat = build () in
    (match layout with
    | None -> ()
    | Some mk ->
        let schema =
          Storage.Relation.schema (Storage.Catalog.find cat "R")
        in
        Storage.Catalog.set_layout cat "R" (mk schema));
    let point = point_plan cat in
    let scan = scan_plan cat in
    let adv =
      Advisor.create ~window:32 ~check_every:8 ~min_benefit:0.02 ~horizon:20.0
        cat
    in
    let total = ref 0 in
    let repartitions = ref 0 in
    let execute plan params =
      let _, st =
        Engines.Engine.run_measured Engines.Engine.Jit cat plan ~params
      in
      total := !total + Memsim.Stats.total_cycles st;
      if advisor then
        List.iter
          (fun (r : Advisor.recommendation) ->
            (* reorganization runs untraced; charge its model cost *)
            total := !total + int_of_float r.Advisor.copy_cost;
            incr repartitions)
          (Advisor.observe adv plan)
    in
    for i = 1 to oltp_len do
      execute point [| V.VInt (i * 37 mod 1000) |]
    done;
    let oltp_cycles = !total in
    for _ = 1 to scan_len do
      execute scan (Workloads.Microbench.params ~sel)
    done;
    (oltp_cycles, !total, !repartitions, cat)
  in
  let phases label (oltp, total) =
    Common.note "%-16s: %s cycles (oltp %s, scans %s)" label
      (Common.pow10_label (float_of_int total))
      (Common.pow10_label (float_of_int oltp))
      (Common.pow10_label (float_of_int (total - oltp)))
  in
  let nsm_oltp, nsm_cycles, _, _ = run_episode ~layout:None ~advisor:false in
  let dsm_oltp, dsm_cycles, _, _ =
    run_episode ~layout:(Some Storage.Layout.column) ~advisor:false
  in
  let adv_oltp, adv_cycles, repartitions, cat =
    run_episode ~layout:None ~advisor:true
  in
  let speedup_nsm = float_of_int nsm_cycles /. float_of_int adv_cycles in
  let speedup_dsm = float_of_int dsm_cycles /. float_of_int adv_cycles in
  phases "static NSM" (nsm_oltp, nsm_cycles);
  phases "static DSM" (dsm_oltp, dsm_cycles);
  phases "online advisor" (adv_oltp, adv_cycles);
  Common.note "advisor repartitioned %d time(s), copy cost charged"
    repartitions;
  Common.note "advisor vs NSM  : %.2fx   advisor vs DSM: %.2fx" speedup_nsm
    speedup_dsm;
  let final_layout =
    Storage.Relation.layout (Storage.Catalog.find cat "R")
  in
  Common.note "final layout    : %s (%d partitions)"
    (Storage.Layout.kind_label final_layout)
    (Storage.Layout.n_partitions final_layout);
  Common.write_bench "BENCH_advisor.json"
    [
      Common.pt ~bench:"advisor" ~metric:"static_nsm.cycles"
        (float_of_int nsm_cycles);
      Common.pt ~bench:"advisor" ~metric:"static_dsm.cycles"
        (float_of_int dsm_cycles);
      Common.pt ~bench:"advisor" ~metric:"online.cycles"
        (float_of_int adv_cycles);
      Common.pt ~bench:"advisor" ~metric:"online.repartitions"
        (float_of_int repartitions);
      Common.pt ~bench:"advisor" ~metric:"online.speedup_vs_nsm" speedup_nsm;
      Common.pt ~bench:"advisor" ~metric:"online.speedup_vs_dsm" speedup_dsm;
    ]
