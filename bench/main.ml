(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index).

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig9    -- run one experiment
*)

let experiments =
  [
    ("table1b", Table1b.run);
    ("fig3", Fig3.run);
    ("fig6", Fig6.run);
    ("fig8", Fig8.run);
    ("table3", Fig8.table3);
    ("table4", Table4.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("vectors", Vectors.run);
    ("compression", Compression.run);
    ("compress", Compress.run);
    ("sparse", Sparse.run);
    ("adaptive", Adaptive.run);
    ("advisor", Advisor.run);
    ("ablations", Ablations.run);
    ("wallclock", Wallclock.run);
    ("parallel", Parallel.run);
    ("tracefast", Tracefast.run);
    ("durability", Durability_bench.run);
    ("oltp", Oltp.run);
    ("shard", Shard_bench.run);
  ]

let () =
  let args =
    Array.to_list Sys.argv |> List.tl
    |> List.filter (fun a -> not (String.equal a "--"))
  in
  let to_run =
    match args with
    | [] -> experiments
    | names ->
        List.filter_map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> Some (n, f)
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" n
                  (String.concat ", " (List.map fst experiments));
                exit 1)
          names
  in
  List.iter (fun (_, f) -> f ()) to_run
