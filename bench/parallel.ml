(* Morsel-parallel scaling: the 50k-row microbench scan-aggregate on an
   untraced catalog (real execution, no simulator), run with 1/2/4/8 worker
   domains.  Reports a speedup table against the sequential run, checks that
   every parallel result equals the sequential one, and writes the numbers
   to BENCH_parallel.json.

   Speedups depend on the machine: with fewer cores than domains the extra
   domains just time-slice, so the table also prints the host's recommended
   domain count for context. *)

let n_rows = 50_000
let sel = 0.1
let domain_counts = [ 1; 2; 4; 8 ]
let repeats = 5

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best of [repeats] timed runs (minimizes scheduler noise). *)
let best_time f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let _, t = wall f in
    if t < !best then best := t
  done;
  !best

let results_equal (a : Engines.Runtime.result) (b : Engines.Runtime.result) =
  a.Engines.Runtime.columns = b.Engines.Runtime.columns
  && List.length a.Engines.Runtime.rows = List.length b.Engines.Runtime.rows
  && List.for_all2
       (fun ra rb -> Array.for_all2 (fun x y -> Storage.Value.compare x y = 0) ra rb)
       a.Engines.Runtime.rows b.Engines.Runtime.rows

let run () =
  Common.header "Parallel scaling — morsel-driven execution on OCaml 5 domains";
  let cat = Workloads.Microbench.build ~n:n_rows () in
  let plan = Workloads.Microbench.plan cat ~sel in
  let params = Workloads.Microbench.params ~sel in
  Common.note "query: scan-aggregate over %d rows (sel %.0f%%), untraced"
    n_rows (100. *. sel);
  Common.note "host offers %d recommended domains"
    (Domain.recommended_domain_count ());
  let engine = Engines.Engine.Jit in
  let reference = Engines.Engine.run engine cat plan ~params in
  let rows =
    List.map
      (fun domains ->
        let result =
          Engines.Engine.run ~domains engine cat plan ~params
        in
        if not (results_equal reference result) then
          failwith
            (Printf.sprintf "parallel result mismatch at %d domains" domains);
        let t =
          best_time (fun () ->
              ignore (Engines.Engine.run ~domains engine cat plan ~params))
        in
        (domains, t))
      domain_counts
  in
  let t1 = List.assoc 1 rows in
  Printf.printf "  %-8s %12s %9s\n" "domains" "best (ms)" "speedup";
  List.iter
    (fun (d, t) ->
      Printf.printf "  %-8d %12.3f %8.2fx\n" d (1000. *. t) (t1 /. t))
    rows;
  Common.note "all parallel results identical to the sequential run";
  let bench = "parallel" in
  let pt = Common.pt ~bench in
  Common.write_bench "BENCH_parallel.json"
    ([
       pt ~metric:"rows" ~unit_:"rows" (float_of_int n_rows);
       pt ~metric:"selectivity" sel;
       pt ~metric:"recommended_domains"
         (float_of_int (Domain.recommended_domain_count ()));
     ]
    @ List.concat_map
        (fun (d, t) ->
          let m name = Printf.sprintf "domains.%d.%s" d name in
          [
            pt ~metric:(m "seconds") ~unit_:"s" t;
            pt ~metric:(m "speedup") ~unit_:"x" (t1 /. t);
          ])
        rows)
