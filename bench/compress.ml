(* Extension bench: execution directly on compressed partitions.  Two
   workloads bracket the design space:

   - an RLE-friendly sorted fact table (long equal-value runs in the
     grouping column, values clustered for frame-of-reference): selections
     become run-granular and grouped aggregation absorbs whole runs per
     hash-table touch;
   - a sparse CNET-like catalog compressed by the advisor's own plan
     (dictionary category, FOR price, sparse optional attributes).

   Each query is measured plain vs. compressed on the same data; simulated
   cycles and L2 misses must both drop on the compression-friendly shapes.
   Results go to BENCH_compress.json; bench/gates.json holds the hard
   floor (speedup >= 1 on the RLE workload, optimizer picks >= 1 scheme). *)

module V = Storage.Value
module Encoding = Storage.Encoding
module Compress = Storage.Compress
module Engine = Engines.Engine
module Stats = Memsim.Stats

(* ------------------------------------------------------------------ *)
(* Workload 1: RLE-friendly sorted fact table                          *)
(* ------------------------------------------------------------------ *)

let fact_schema =
  Storage.Schema.make "fact"
    [ ("id", V.Int); ("grp", V.Int); ("base", V.Int); ("pay", V.Int) ]

let build_fact ~compressed n =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let encodings =
    if compressed then
      [ (1, Encoding.Rle); (2, Encoding.For_bp 1); (3, Encoding.For_bp 2) ]
    else []
  in
  let layout =
    Compress.singleton_layout fact_schema
      (Storage.Layout.column fact_schema)
      encodings
  in
  let rel = Storage.Catalog.add ~encodings cat fact_schema layout in
  let rng = Mrdb_util.Rng.create 99 in
  Storage.Relation.load rel ~n (fun ~row ->
      [|
        V.VInt row;
        V.VInt (row / 200) (* sorted: 200-tuple runs *);
        V.VInt (100_000 + (row mod 90));
        V.VInt (5_000 + Mrdb_util.Rng.int rng 900);
      |]);
  cat

(* ------------------------------------------------------------------ *)
(* Workload 2: sparse CNET-like catalog under the advisor's plan       *)
(* ------------------------------------------------------------------ *)

let n_extras = 24

let cnet_schema =
  Storage.Schema.make_nullable "catalog"
    ([
       ("id", V.Int, false);
       ("category", V.Varchar 16, false);
       ("price", V.Int, false);
     ]
    @ List.init n_extras (fun i ->
          (Printf.sprintf "opt_%02d" i, V.Int, true)))

let build_cnet ~compressed n =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let rel =
    Storage.Catalog.add cat cnet_schema (Storage.Layout.column cnet_schema)
  in
  let rng = Mrdb_util.Rng.create 4242 in
  Storage.Relation.load rel ~n (fun ~row ->
      Array.init (3 + n_extras) (fun i ->
          match i with
          | 0 -> V.VInt row
          | 1 -> V.VStr (Printf.sprintf "cat%02d" (Mrdb_util.Rng.int rng 25))
          | 2 -> V.VInt (10 * Mrdb_util.Rng.int_in rng 1 100)
          | _ ->
              if Mrdb_util.Rng.bool rng 0.05 then
                V.VInt (Mrdb_util.Rng.int rng 100000)
              else V.Null));
  if compressed then
    (* the advisor derives the plan from the stored data itself *)
    Compress.apply cat "catalog" (Compress.plan rel);
  cat

(* ------------------------------------------------------------------ *)

let measure engine cat sql =
  let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
  let _, st = Engine.run_measured engine cat plan ~params:[||] in
  st

let run () =
  Common.header "Extension — execution directly on compressed partitions";
  let scale = Common.scale_env "MRDB_BENCH_SCALE" 1.0 in
  let n_fact = int_of_float (40_000.0 *. scale) in
  let n_cnet = int_of_float (20_000.0 *. scale) in

  let fact_plain = build_fact ~compressed:false n_fact in
  let fact_comp = build_fact ~compressed:true n_fact in
  let cnet_plain = build_cnet ~compressed:false n_cnet in
  let cnet_comp = build_cnet ~compressed:true n_cnet in

  let bytes cat name =
    Storage.Relation.storage_bytes (Storage.Catalog.find cat name)
  in
  Common.note "fact storage: plain %s B, compressed %s B (%.1fx smaller)"
    (Common.pow10_label (float_of_int (bytes fact_plain "fact")))
    (Common.pow10_label (float_of_int (bytes fact_comp "fact")))
    (float_of_int (bytes fact_plain "fact")
    /. float_of_int (bytes fact_comp "fact"));
  Common.note "catalog storage: plain %s B, compressed %s B (%.1fx smaller)"
    (Common.pow10_label (float_of_int (bytes cnet_plain "catalog")))
    (Common.pow10_label (float_of_int (bytes cnet_comp "catalog")))
    (float_of_int (bytes cnet_plain "catalog")
    /. float_of_int (bytes cnet_comp "catalog"));

  (* (point name, engine, plain catalog, compressed catalog, sql) *)
  let cases =
    [
      ( "rle_filter",
        Engine.Jit,
        fact_plain,
        fact_comp,
        "select count(*) c from fact where grp = 77" );
      ( "rle_group",
        Engine.Bulk,
        fact_plain,
        fact_comp,
        "select grp, count(*) c, sum(grp) s from fact group by grp" );
      (* aggregating a FOR column per group decodes every input: the decode
         CPU cost offsets the traffic saved, an honest trade-off point *)
      ( "group_mixed",
        Engine.Bulk,
        fact_plain,
        fact_comp,
        "select grp, count(*) c, sum(base) s from fact group by grp" );
      ( "for_range",
        Engine.Jit,
        fact_plain,
        fact_comp,
        "select count(*) c from fact where base < 100010" );
      ( "cnet_dict_filter",
        Engine.Jit,
        cnet_plain,
        cnet_comp,
        "select count(*) c from catalog where category = 'cat07'" );
      ( "cnet_sparse_agg",
        Engine.Jit,
        cnet_plain,
        cnet_comp,
        "select count(opt_07) c, sum(opt_07) s from catalog" );
    ]
  in
  let tab =
    Common.Texttab.create
      [ "query"; "plain cyc"; "comp cyc"; "plain L2"; "comp L2" ]
  in
  let points = ref [] in
  let emit p = points := p :: !points in
  let pt = Common.pt ~bench:"compress" in
  List.iter
    (fun (name, engine, plain_cat, comp_cat, sql) ->
      let p = measure engine plain_cat sql in
      let c = measure engine comp_cat sql in
      let pc = float_of_int (Stats.total_cycles p)
      and cc = float_of_int (Stats.total_cycles c)
      and pl2 = float_of_int p.Stats.l2_misses
      and cl2 = float_of_int c.Stats.l2_misses in
      Common.Texttab.row tab
        [
          name;
          Common.pow10_label pc;
          Common.pow10_label cc;
          Common.pow10_label pl2;
          Common.pow10_label cl2;
        ];
      emit (pt ~metric:(name ^ ".plain_cycles") ~unit_:"cycles" pc);
      emit (pt ~metric:(name ^ ".compressed_cycles") ~unit_:"cycles" cc);
      emit (pt ~metric:(name ^ ".plain_l2_misses") pl2);
      emit (pt ~metric:(name ^ ".compressed_l2_misses") cl2);
      emit (pt ~metric:(name ^ ".speedup_cycles") (pc /. cc));
      emit (pt ~metric:(name ^ ".speedup_l2") (pl2 /. Float.max 1. cl2)))
    cases;
  Common.Texttab.print tab;

  (* the optimizer's joint layout x compression search must choose
     compression for this data of its own accord *)
  let wl =
    List.map
      (fun sql ->
        ( Relalg.Planner.plan fact_plain (Relalg.Sql.parse fact_plain sql),
          1.0 ))
      [
        "select grp, count(*) c, sum(base) s from fact group by grp";
        "select count(*) c from fact where grp = 77";
        "select sum(pay) s from fact where base < 100010";
      ]
  in
  let r =
    Layoutopt.Optimizer.optimize_table ~compress:true fact_plain "fact" wl
  in
  let chosen = List.length r.Layoutopt.Optimizer.encodings in
  Common.note "optimizer chose %d compressed column(s): %s" chosen
    (String.concat ", "
       (List.map
          (fun (a, e) ->
            Printf.sprintf "%s:%s"
              (Storage.Schema.attr fact_schema a).Storage.Schema.name
              (Format.asprintf "%a" Encoding.pp e))
          r.Layoutopt.Optimizer.encodings));
  emit (pt ~metric:"optimizer.encodings_chosen" (float_of_int chosen));
  emit
    (pt ~metric:"fact.storage_ratio"
       (float_of_int (bytes fact_comp "fact")
       /. float_of_int (bytes fact_plain "fact")));

  Common.write_bench "BENCH_compress.json" (List.rev !points);
  Common.note
    "expected shape: run-granular selection and aggregation drop both \
     cycles and L2 misses on the sorted fact table; the advisor-compressed \
     catalog wins on the dictionary filter while sparse aggregation reads \
     only the pair lists"
