(* Bench trajectory consolidator.

   Subcommands:

     report.exe consolidate [-o OUT] [FILE...]
         Normalize every BENCH_*.json (legacy shapes included) into one
         BENCH_trajectory.json.  With no FILE arguments, discovers
         BENCH_*.json in the current directory.

     report.exe diff BASELINE CURRENT [--threshold R]
         Print per-metric deltas between two trajectory files; with
         --threshold, list only metrics whose relative change exceeds R.

     report.exe gate --gates GATES.json CURRENT [--baseline FILE]
         Apply regression gates (see Obs.Trajectory.gates_of_json) to a
         trajectory; exit 1 if any gate is violated.  --baseline enables
         the max_regress drift checks.  *)

module J = Obs.Json
module T = Obs.Trajectory

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("report: " ^ s);
      exit 2)
    fmt

let trajectory_file = "BENCH_trajectory.json"

let bench_of_filename path =
  let base = Filename.remove_extension (Filename.basename path) in
  let prefix = "BENCH_" in
  let plen = String.length prefix in
  if String.length base > plen && String.sub base 0 plen = prefix then
    String.sub base plen (String.length base - plen)
  else base

let discover () =
  Sys.readdir "." |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 6
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json"
         && f <> trajectory_file)
  |> List.sort compare

let load_points file =
  match J.parse_file file with
  | j -> T.normalize_legacy ~bench:(bench_of_filename file) j
  | exception Sys_error e -> fail "%s" e
  | exception J.Parse_error e -> fail "%s: %s" file e

let commit () =
  match Sys.getenv_opt "MRDB_COMMIT" with
  | Some c -> c
  | None -> ( match Sys.getenv_opt "GITHUB_SHA" with Some c -> c | None -> "")

let consolidate ~out files =
  let files = match files with [] -> discover () | fs -> fs in
  if files = [] then fail "no BENCH_*.json files found";
  let points = List.concat_map load_points files in
  T.save out (T.make_run ~commit:(commit ()) points);
  Printf.printf "consolidated %d file(s), %d point(s) -> %s\n"
    (List.length files) (List.length points) out

let load_run file =
  match T.load file with
  | r -> r
  | exception Sys_error e -> fail "%s" e
  | exception Failure e -> fail "%s: %s" file e
  | exception J.Parse_error e -> fail "%s: %s" file e

let diff ~threshold baseline current =
  let deltas = T.diff ~baseline:(load_run baseline) (load_run current) in
  let interesting (d : T.delta) =
    match (threshold, d.T.ratio) with
    | None, _ -> true
    | Some _, None -> true (* appeared or disappeared *)
    | Some thr, Some r -> Float.abs (r -. 1.) > thr
  in
  let shown = List.filter interesting deltas in
  List.iter
    (fun (d : T.delta) ->
      let f = function None -> "-" | Some v -> Printf.sprintf "%.6g" v in
      let rel =
        match d.T.ratio with
        | Some r -> Printf.sprintf "%+.1f%%" (100. *. (r -. 1.))
        | None -> "-"
      in
      Printf.printf "%-60s %14s %14s %9s\n" d.T.key (f d.T.before)
        (f d.T.after) rel)
    shown;
  Printf.printf "%d metric(s), %d shown%s\n" (List.length deltas)
    (List.length shown)
    (match threshold with
    | Some t -> Printf.sprintf " (threshold %.0f%%)" (100. *. t)
    | None -> "")

let gate ~gates_file ~baseline current =
  let gates =
    match J.parse_file gates_file with
    | j -> T.gates_of_json j
    | exception Sys_error e -> fail "%s" e
    | exception J.Parse_error e -> fail "%s: %s" gates_file e
  in
  let baseline = Option.map load_run baseline in
  let violations = T.check ~gates ?baseline (load_run current) in
  if violations = [] then
    Printf.printf "gate: ok (%d gate(s) over %s)\n" (List.length gates)
      current
  else begin
    List.iter
      (fun (v : T.violation) ->
        Printf.eprintf "gate violation: %s/%s: %s (gate %s)\n"
          v.T.point.T.bench v.T.point.T.metric v.T.reason v.T.gate.T.pattern)
      violations;
    Printf.eprintf "gate: %d violation(s)\n" (List.length violations);
    exit 1
  end

let usage () =
  prerr_endline
    "usage: report.exe consolidate [-o OUT] [FILE...]\n\
    \       report.exe diff BASELINE CURRENT [--threshold R]\n\
    \       report.exe gate --gates GATES.json CURRENT [--baseline FILE]";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | _ :: "consolidate" :: rest ->
      let rec go out files = function
        | [] -> consolidate ~out (List.rev files)
        | "-o" :: o :: rest -> go o files rest
        | "-o" :: [] -> usage ()
        | f :: rest -> go out (f :: files) rest
      in
      go trajectory_file [] rest
  | _ :: "diff" :: rest ->
      let rec go threshold files = function
        | [] -> (
            match List.rev files with
            | [ baseline; current ] -> diff ~threshold baseline current
            | _ -> usage ())
        | "--threshold" :: t :: rest -> (
            match float_of_string_opt t with
            | Some t -> go (Some t) files rest
            | None -> usage ())
        | "--threshold" :: [] -> usage ()
        | f :: rest -> go threshold (f :: files) rest
      in
      go None [] rest
  | _ :: "gate" :: rest ->
      let rec go gates baseline files = function
        | [] -> (
            match (gates, List.rev files) with
            | Some gates_file, [ current ] ->
                gate ~gates_file ~baseline current
            | _ -> usage ())
        | "--gates" :: g :: rest -> go (Some g) baseline files rest
        | "--baseline" :: b :: rest -> go gates (Some b) files rest
        | ("--gates" | "--baseline") :: [] -> usage ()
        | f :: rest -> go gates baseline (f :: files) rest
      in
      go None None [] rest
  | _ -> usage ()
