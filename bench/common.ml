(* Shared helpers for the experiment harness. *)

module Texttab = Mrdb_util.Texttab

let clock_ghz = 2.67 (* the paper's Xeon X5650 *)

let seconds_of_cycles c = float_of_int c /. (clock_ghz *. 1e9)

let header title =
  let line = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title line

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

let scale_env name default =
  match Sys.getenv_opt name with
  | Some v -> ( try float_of_string v with _ -> default)
  | None -> default

let pow10_label f =
  if f >= 1e9 then Printf.sprintf "%.2fG" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2fM" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fk" (f /. 1e3)
  else Printf.sprintf "%.0f" f

let run_jit = Engines.Engine.Jit
let run_hyrise = Engines.Engine.Hyrise
let run_bulk = Engines.Engine.Bulk
let run_volcano = Engines.Engine.Volcano

let measure engine cat plan params =
  let _, st = Engines.Engine.run_measured engine cat plan ~params in
  Memsim.Stats.total_cycles st

(* Run one workload query measured. *)
let measure_query engine cat (q : Workloads.Workload.query) ~use_indexes =
  let plan = q.Workloads.Workload.make_plan ~use_indexes in
  measure engine cat plan q.Workloads.Workload.params

(* ------------------------------------------------------------------ *)
(* Unified bench output                                               *)
(* ------------------------------------------------------------------ *)

(* Every benchmark that persists results writes normalized trajectory
   points through this one sink, so [bench/report.exe] can consolidate,
   diff and gate them without per-file parsers. *)

let commit () =
  match Sys.getenv_opt "MRDB_COMMIT" with
  | Some c -> c
  | None -> ( match Sys.getenv_opt "GITHUB_SHA" with Some c -> c | None -> "")

let pt ~bench ~metric ?unit_ v = Obs.Trajectory.point ~bench ~metric ?unit_ v

let write_bench file points =
  Obs.Trajectory.save file (Obs.Trajectory.make_run ~commit:(commit ()) points);
  note "wrote %s" file
