(* Real wall-clock validation, no simulator attached.

   Two parts.  First the historical Bechamel comparison: the
   CPU-efficiency ordering of the processing models must also hold for
   actual OCaml execution, plus the layout sensitivity of the JiT engine.

   Second, the raw-speed sweep this PR's scaling work is gated on: a
   hand-timed best-of-N grid over (engine x domains x morsel size), one
   trajectory point per cell, plus the autotuned cell and the compiled
   engine.  On a multi-core host the 2-domain best cell should beat
   serial; on a single-CPU container (CI) the physical ceiling is parity,
   so the gate asserts the parallel path costs at most ~10% over serial
   (MRDB_WALLCLOCK_ASSERT overrides the threshold; unset skips the hard
   assert and only the gates file judges the trajectory). *)

open Bechamel
open Toolkit

let make_catalog () =
  (* untraced catalog: full-speed execution *)
  Workloads.Microbench.build ~n:50_000 ()

let engine_tests () =
  let cat = make_catalog () in
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let plan = Workloads.Microbench.plan cat ~sel:0.01 in
  let params = Workloads.Microbench.params ~sel:0.01 in
  List.map
    (fun engine ->
      Test.make
        ~name:(Printf.sprintf "example-query/%s" (Engines.Engine.name engine))
        (Staged.stage (fun () ->
             ignore (Engines.Engine.run engine cat plan ~params))))
    [
      Engines.Engine.Volcano;
      Engines.Engine.Bulk;
      Engines.Engine.Jit;
      Engines.Engine.Compiled;
    ]

let layout_tests () =
  let cat = make_catalog () in
  List.map
    (fun (name, layout) ->
      Storage.Catalog.set_layout cat "R" layout;
      (* each test gets its own catalog state snapshot via rebuild *)
      let cat = make_catalog () in
      Storage.Catalog.set_layout cat "R" layout;
      let plan = Workloads.Microbench.plan cat ~sel:0.01 in
      let params = Workloads.Microbench.params ~sel:0.01 in
      Test.make
        ~name:(Printf.sprintf "jit-layout/%s" name)
        (Staged.stage (fun () ->
             ignore (Engines.Engine.run Engines.Engine.Jit cat plan ~params))))
    [
      ("row", Storage.Layout.row Workloads.Microbench.schema);
      ("column", Storage.Layout.column Workloads.Microbench.schema);
      ("pdsm", Workloads.Microbench.pdsm_layout);
    ]

let benchmark tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"mrdb" ~fmt:"%s %s" tests)
  in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) instances results in
  results

(* Print estimates and collect them as [(name, ns_per_run)] for the
   trajectory file. *)
let print_results results =
  let collected = ref [] in
  Hashtbl.iter
    (fun measure tbl ->
      if String.equal measure (Measure.label Instance.monotonic_clock) then
        Hashtbl.iter
          (fun name ols ->
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ est ] ->
                Printf.printf "  %-40s %12.0f ns/run\n" name est;
                collected := (name, est) :: !collected
            | _ -> Printf.printf "  %-40s (no estimate)\n" name)
          tbl)
    results;
  List.sort compare !collected

(* "mrdb example-query/jit" -> "example-query.jit" *)
let metric_of_test_name name =
  let name =
    match String.index_opt name ' ' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  String.map (function '/' -> '.' | c -> c) name

(* ------------------------------------------------------------------ *)
(* Multicore scaling sweep                                             *)
(* ------------------------------------------------------------------ *)

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let nproc () =
  let ic = Unix.open_process_in "nproc 2>/dev/null" in
  let n =
    try int_of_string (String.trim (input_line ic)) with _ -> 1
  in
  ignore (Unix.close_process_in ic);
  n

let sweep_points () =
  let rows = int_of_float (Common.scale_env "MRDB_WALLCLOCK_ROWS" 2e6) in
  let reps =
    int_of_float (Common.scale_env "MRDB_WALLCLOCK_REPS" 5.0)
  in
  let cat = Workloads.Microbench.build ~n:rows () in
  let plan = Workloads.Microbench.plan cat ~sel:0.5 in
  let params = Workloads.Microbench.params ~sel:0.5 in
  let cores = nproc () in
  Common.note "scaling sweep: %d rows, best of %d, %d CPU(s) available"
    rows reps cores;
  let points = ref [] in
  let add metric ?unit_ v =
    points := Common.pt ~bench:"wallclock" ~metric ?unit_ v :: !points
  in
  let engines =
    [ (Engines.Engine.Jit, "jit"); (Engines.Engine.Compiled, "compiled") ]
  in
  let serial_of = Hashtbl.create 4 in
  List.iter
    (fun (engine, ename) ->
      let serial =
        best_of reps (fun () -> Engines.Engine.run engine cat plan ~params)
      in
      Hashtbl.add serial_of ename serial;
      Common.note "%-9s serial         %8.4f s" ename serial;
      add (Printf.sprintf "%s.d1.seconds" ename) ~unit_:"s" serial;
      List.iter
        (fun domains ->
          let best_speedup = ref 0.0 in
          List.iter
            (fun morsel_size ->
              let t =
                best_of reps (fun () ->
                    Engines.Engine.run ~domains ~morsel_size engine cat plan
                      ~params)
              in
              let speedup = serial /. t in
              if speedup > !best_speedup then best_speedup := speedup;
              Common.note "%-9s d%d m%-8d     %8.4f s  %5.2fx" ename domains
                morsel_size t speedup;
              add
                (Printf.sprintf "%s.d%d.m%d.seconds" ename domains
                   morsel_size)
                ~unit_:"s" t;
              add
                (Printf.sprintf "%s.d%d.m%d.speedup" ename domains
                   morsel_size)
                speedup)
            [ 4096; 65536; 262144 ];
          (* the autotuned cell: morsel size picked from a measured probe *)
          let t =
            best_of reps (fun () ->
                Engines.Engine.run ~domains ~autotune:true engine cat plan
                  ~params)
          in
          let speedup = serial /. t in
          if speedup > !best_speedup then best_speedup := speedup;
          let chosen =
            int_of_float
              (Obs.Metrics.gauge_value
                 (Obs.Metrics.gauge "parallel_morsel_size"))
          in
          Common.note "%-9s d%d autotune(%d) %8.4f s  %5.2fx" ename domains
            chosen t speedup;
          add (Printf.sprintf "%s.d%d.auto.seconds" ename domains) ~unit_:"s"
            t;
          add (Printf.sprintf "%s.d%d.auto.speedup" ename domains) speedup;
          add
            (Printf.sprintf "%s.d%d.best.speedup" ename domains)
            !best_speedup)
        [ 2; 4 ])
    engines;
  (* compiled vs interpreted: the raw-speed payoff of native pipelines *)
  (match
     ( Hashtbl.find_opt serial_of "jit",
       Hashtbl.find_opt serial_of "compiled" )
   with
  | Some j, Some c when c > 0.0 ->
      Common.note "compiled vs jit serial: %.2fx" (j /. c);
      add "compiled.vs_jit.speedup" (j /. c)
  | _ -> ());
  (* CI hard assertion: the parallel path must not fall off a cliff.  On a
     single CPU a true speedup is impossible, so the default floor checks
     near-parity rather than scaling. *)
  (match Sys.getenv_opt "MRDB_WALLCLOCK_ASSERT" with
  | None | Some "" -> ()
  | Some floor_s ->
      let floor = float_of_string floor_s in
      let best2 =
        List.fold_left
          (fun acc p ->
            if p.Obs.Trajectory.metric = "jit.d2.best.speedup" then
              p.Obs.Trajectory.value
            else acc)
          0.0 !points
      in
      if best2 < floor then begin
        Printf.eprintf
          "wallclock: FAIL 2-domain best speedup %.3fx < floor %sx\n" best2
          floor_s;
        exit 1
      end
      else
        Common.note "assert ok: 2-domain best speedup %.3fx >= %sx" best2
          floor_s);
  List.rev !points

let run () =
  Common.header "Wall-clock (Bechamel) — real execution, no simulator";
  let tests = engine_tests () @ layout_tests () in
  let estimates = print_results (benchmark tests) in
  Common.note
    "expected: volcano is several times slower than jit/bulk in real \
     execution — per-tuple closure indirection is a genuine overhead, not \
     only a simulated one.  (The HYRISE engine is omitted here: it differs \
     from bulk only in the CPU cycles charged to the simulator.)";
  Common.header "Wall-clock scaling — domains x morsel size";
  let sweep = sweep_points () in
  Common.write_bench "BENCH_wallclock.json"
    (List.map
       (fun (name, est) ->
         Common.pt ~bench:"wallclock"
           ~metric:(metric_of_test_name name ^ ".ns_per_run")
           ~unit_:"ns" est)
       estimates
    @ sweep)
