(* Real wall-clock validation with Bechamel: the CPU-efficiency ordering of
   the processing models must also hold for actual OCaml execution (no
   simulator attached).  One Test.make per engine on the example query, plus
   one per benchmark table family. *)

open Bechamel
open Toolkit

let make_catalog () =
  (* untraced catalog: full-speed execution *)
  Workloads.Microbench.build ~n:50_000 ()

let engine_tests () =
  let cat = make_catalog () in
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let plan = Workloads.Microbench.plan cat ~sel:0.01 in
  let params = Workloads.Microbench.params ~sel:0.01 in
  List.map
    (fun engine ->
      Test.make
        ~name:(Printf.sprintf "example-query/%s" (Engines.Engine.name engine))
        (Staged.stage (fun () ->
             ignore (Engines.Engine.run engine cat plan ~params))))
    [ Engines.Engine.Volcano; Engines.Engine.Bulk; Engines.Engine.Jit ]

let layout_tests () =
  let cat = make_catalog () in
  List.map
    (fun (name, layout) ->
      Storage.Catalog.set_layout cat "R" layout;
      (* each test gets its own catalog state snapshot via rebuild *)
      let cat = make_catalog () in
      Storage.Catalog.set_layout cat "R" layout;
      let plan = Workloads.Microbench.plan cat ~sel:0.01 in
      let params = Workloads.Microbench.params ~sel:0.01 in
      Test.make
        ~name:(Printf.sprintf "jit-layout/%s" name)
        (Staged.stage (fun () ->
             ignore (Engines.Engine.run Engines.Engine.Jit cat plan ~params))))
    [
      ("row", Storage.Layout.row Workloads.Microbench.schema);
      ("column", Storage.Layout.column Workloads.Microbench.schema);
      ("pdsm", Workloads.Microbench.pdsm_layout);
    ]

let benchmark tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"mrdb" ~fmt:"%s %s" tests)
  in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]) instances results in
  results

(* Print estimates and collect them as [(name, ns_per_run)] for the
   trajectory file. *)
let print_results results =
  let collected = ref [] in
  Hashtbl.iter
    (fun measure tbl ->
      if String.equal measure (Measure.label Instance.monotonic_clock) then
        Hashtbl.iter
          (fun name ols ->
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ est ] ->
                Printf.printf "  %-40s %12.0f ns/run\n" name est;
                collected := (name, est) :: !collected
            | _ -> Printf.printf "  %-40s (no estimate)\n" name)
          tbl)
    results;
  List.sort compare !collected

(* "mrdb example-query/jit" -> "example-query.jit" *)
let metric_of_test_name name =
  let name =
    match String.index_opt name ' ' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  String.map (function '/' -> '.' | c -> c) name

let run () =
  Common.header "Wall-clock (Bechamel) — real execution, no simulator";
  let tests = engine_tests () @ layout_tests () in
  let estimates = print_results (benchmark tests) in
  Common.note
    "expected: volcano is several times slower than jit/bulk in real \
     execution — per-tuple closure indirection is a genuine overhead, not \
     only a simulated one.  (The HYRISE engine is omitted here: it differs \
     from bulk only in the CPU cycles charged to the simulator.)";
  Common.write_bench "BENCH_wallclock.json"
    (List.map
       (fun (name, est) ->
         Common.pt ~bench:"wallclock"
           ~metric:(metric_of_test_name name ^ ".ns_per_run")
           ~unit_:"ns" est)
       estimates)
