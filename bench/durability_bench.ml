(* Durability overhead and recovery speed.

   Keeps the hot path honest three ways:
   - simulated counters with and without the WAL observer must be identical
     (logging is additive, off the traced path);
   - wall-clock logging overhead per updated tuple (in-memory sink and a
     real file sink), vs. the non-durable update;
   - snapshot write / full recovery wall-clock vs. relation size.

   Results go to BENCH_durability.json. *)

module F = Durability.Faultio
module D = Durability.Durable
module Wal = Durability.Wal

let best_time ?(repeat = 5) f =
  let best = ref infinity in
  for _ = 1 to repeat do
    let t0 = Unix.gettimeofday () in
    f ();
    let t = Unix.gettimeofday () -. t0 in
    if t < !best then best := t
  done;
  !best

let update_sql = "update R set B = 7 where A < 500000"

let build_catalog ?hier n = Workloads.Microbench.build ?hier ~n ()

let update_plan cat =
  Relalg.Planner.plan cat (Relalg.Sql.parse cat update_sql)

let run_update cat =
  ignore
    (Engines.Engine.run Engines.Engine.Jit cat (update_plan cat) ~params:[||])

(* every measured run updates the same tuples: rebuild the catalog inside
   the timed closure would swamp the measurement, so rebuild around it *)
let time_update ~attach n =
  best_time (fun () ->
      let cat = build_catalog n in
      let d = attach cat in
      run_update cat;
      Option.iter D.detach d)

let simulated_cycles ~durable n =
  let hier = Memsim.Hierarchy.create () in
  let cat = build_catalog ~hier n in
  let d = if durable then Some (D.attach (F.memory ()) cat) else None in
  let _, st =
    Engines.Engine.run_measured Engines.Engine.Jit cat (update_plan cat)
      ~params:[||]
  in
  Option.iter D.detach d;
  Memsim.Stats.total_cycles st

let with_tmpdir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mrdb_bench_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir)

let run () =
  Common.header "durability: logging overhead and recovery speed";
  let scale = Common.scale_env "MRDB_BENCH_SCALE" 1.0 in
  let n = int_of_float (50_000.0 *. scale) in
  let updated = ref 0 in

  (* the hot-path contract first *)
  let plain_cycles = simulated_cycles ~durable:false n in
  let logged_cycles = simulated_cycles ~durable:true n in
  if plain_cycles <> logged_cycles then
    failwith "durability perturbed the simulated counters";
  Common.note "simulated cycles identical with and without WAL: %d"
    plain_cycles;

  (* how many tuples the statement updates (for the per-tuple number) *)
  (let cat = build_catalog n in
   let rel = Storage.Catalog.find cat "R" in
   run_update cat;
   for tid = 0 to Storage.Relation.nrows rel - 1 do
     if Storage.Relation.get rel tid 1 = Storage.Value.VInt 7 then
       incr updated
   done);
  Common.note "statement updates %d of %d tuples" !updated n;

  let t_plain = time_update ~attach:(fun _ -> None) n in
  let t_mem =
    time_update ~attach:(fun cat -> Some (D.attach (F.memory ()) cat)) n
  in
  let t_file =
    with_tmpdir (fun dir ->
        time_update ~attach:(fun cat -> Some (D.attach (F.in_dir dir) cat)) n)
  in
  let per_tuple t =
    1e9 *. (t -. t_plain) /. float_of_int (max 1 !updated)
  in
  Printf.printf "  %-28s %10.3f ms\n" "update, no durability"
    (1000. *. t_plain);
  Printf.printf "  %-28s %10.3f ms  (%+.0f ns/tuple)\n" "update, WAL in memory"
    (1000. *. t_mem) (per_tuple t_mem);
  Printf.printf "  %-28s %10.3f ms  (%+.0f ns/tuple)\n" "update, WAL on disk"
    (1000. *. t_file) (per_tuple t_file);

  (* snapshot + recovery vs. size *)
  let sizes =
    List.filter
      (fun s -> s <= n)
      [ n / 25; n / 5; n ]
    |> List.sort_uniq compare
  in
  let snap_rows =
    List.map
      (fun rows ->
        let env = F.memory () in
        let cat = build_catalog rows in
        let d = D.attach env cat in
        let t_snap = best_time ~repeat:3 (fun () -> D.checkpoint d) in
        D.detach d;
        let snap_bytes = F.durable_size env Durability.Snapshot.store_name in
        let t_rec =
          best_time ~repeat:3 (fun () ->
              ignore (Durability.Recover.run env))
        in
        Printf.printf
          "  %8d rows  snapshot %8.3f ms (%7d KiB)  recovery %8.3f ms\n" rows
          (1000. *. t_snap) (snap_bytes / 1024) (1000. *. t_rec);
        (rows, t_snap, snap_bytes, t_rec))
      sizes
  in

  let bench = "durability" in
  let pt = Common.pt ~bench in
  Common.write_bench "BENCH_durability.json"
    ([
       pt ~metric:"rows" ~unit_:"rows" (float_of_int n);
       pt ~metric:"updated_tuples" (float_of_int !updated);
       pt ~metric:"simulated_cycles_plain" ~unit_:"cycles"
         (float_of_int plain_cycles);
       pt ~metric:"simulated_cycles_logged" ~unit_:"cycles"
         (float_of_int logged_cycles);
       pt ~metric:"update_seconds_plain" ~unit_:"s" t_plain;
       pt ~metric:"update_seconds_wal_memory" ~unit_:"s" t_mem;
       pt ~metric:"update_seconds_wal_file" ~unit_:"s" t_file;
       pt ~metric:"logging_ns_per_tuple_memory" ~unit_:"ns"
         (per_tuple t_mem);
       pt ~metric:"logging_ns_per_tuple_file" ~unit_:"ns" (per_tuple t_file);
     ]
    @ List.concat_map
        (fun (rows, t_snap, bytes, t_rec) ->
          let m k = Printf.sprintf "snapshot.%d.%s" rows k in
          [
            pt ~metric:(m "snapshot_seconds") ~unit_:"s" t_snap;
            pt ~metric:(m "snapshot_bytes") ~unit_:"bytes"
              (float_of_int bytes);
            pt ~metric:(m "recovery_seconds") ~unit_:"s" t_rec;
          ])
        snap_rows)
