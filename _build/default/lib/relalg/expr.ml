module Value = Storage.Value

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod

type t =
  | Col of int
  | Param of int
  | Const of Value.t
  | Cmp of cmp * t * t
  | Like of t * t
  | And of t list
  | Or of t list
  | Not of t
  | IsNull of t
  | Arith of arith * t * t

let truthy = function Value.VBool b -> b | _ -> false

let apply_cmp op a b =
  if Value.is_null a || Value.is_null b then Value.VBool false
  else
    let c = Value.compare a b in
    Value.VBool
      (match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0)

let apply_arith op a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else
    match (a, b) with
    | Value.VFloat _, _ | _, Value.VFloat _ ->
        let x = Value.to_float a and y = Value.to_float b in
        Value.VFloat
          (match op with
          | Add -> x +. y
          | Sub -> x -. y
          | Mul -> x *. y
          | Div -> x /. y
          | Mod -> Float.rem x y)
    | _ ->
        let x = Value.to_int a and y = Value.to_int b in
        Value.VInt
          (match op with
          | Add -> x + y
          | Sub -> x - y
          | Mul -> x * y
          | Div -> if y = 0 then 0 else x / y
          | Mod -> if y = 0 then 0 else x mod y)

let rec eval t ~params col =
  match t with
  | Col i -> col i
  | Param n ->
      if n < 1 || n > Array.length params then
        invalid_arg (Printf.sprintf "Expr.eval: parameter $%d not bound" n)
      else params.(n - 1)
  | Const v -> v
  | Cmp (op, a, b) -> apply_cmp op (eval a ~params col) (eval b ~params col)
  | Like (e, p) ->
      let pat = eval p ~params col in
      if Value.is_null pat then Value.VBool false
      else Value.VBool (Value.like (eval e ~params col) ~pattern:(Value.to_string_exn pat))
  | And es ->
      Value.VBool (List.for_all (fun e -> truthy (eval e ~params col)) es)
  | Or es -> Value.VBool (List.exists (fun e -> truthy (eval e ~params col)) es)
  | Not e -> Value.VBool (not (truthy (eval e ~params col)))
  | IsNull e -> Value.VBool (Value.is_null (eval e ~params col))
  | Arith (op, a, b) -> apply_arith op (eval a ~params col) (eval b ~params col)

(* Closure compilation: resolve parameters/constants once, return a thunk
   free of dispatch on the expression tree. *)
let specialize t ~params col =
  let rec comp t : unit -> Value.t =
    match t with
    | Col i -> fun () -> col i
    | Param n ->
        if n < 1 || n > Array.length params then
          invalid_arg (Printf.sprintf "Expr.specialize: parameter $%d not bound" n)
        else
          let v = params.(n - 1) in
          fun () -> v
    | Const v -> fun () -> v
    | Cmp (op, a, b) ->
        let fa = comp a and fb = comp b in
        fun () -> apply_cmp op (fa ()) (fb ())
    | Like (e, p) ->
        let fe = comp e and fp = comp p in
        fun () ->
          let pat = fp () in
          if Value.is_null pat then Value.VBool false
          else Value.VBool (Value.like (fe ()) ~pattern:(Value.to_string_exn pat))
    | And es ->
        let fs = List.map comp es in
        fun () -> Value.VBool (List.for_all (fun f -> truthy (f ())) fs)
    | Or es ->
        let fs = List.map comp es in
        fun () -> Value.VBool (List.exists (fun f -> truthy (f ())) fs)
    | Not e ->
        let fe = comp e in
        fun () -> Value.VBool (not (truthy (fe ())))
    | IsNull e ->
        let fe = comp e in
        fun () -> Value.VBool (Value.is_null (fe ()))
    | Arith (op, a, b) ->
        let fa = comp a and fb = comp b in
        fun () -> apply_arith op (fa ()) (fb ())
  in
  comp t

let cols t =
  let acc = ref [] in
  let rec go = function
    | Col i -> acc := i :: !acc
    | Param _ | Const _ -> ()
    | Cmp (_, a, b) | Arith (_, a, b) ->
        go a;
        go b
    | Not e | IsNull e -> go e
    | Like (a, b) ->
        go a;
        go b
    | And es | Or es -> List.iter go es
  in
  go t;
  List.sort_uniq compare !acc

let conjuncts = function And es -> es | e -> [ e ]

let rec remap t f =
  match t with
  | Col i -> Col (f i)
  | Param _ | Const _ -> t
  | Cmp (op, a, b) -> Cmp (op, remap a f, remap b f)
  | Like (a, b) -> Like (remap a f, remap b f)
  | And es -> And (List.map (fun e -> remap e f) es)
  | Or es -> Or (List.map (fun e -> remap e f) es)
  | Not e -> Not (remap e f)
  | IsNull e -> IsNull (remap e f)
  | Arith (op, a, b) -> Arith (op, remap a f, remap b f)

let rec default_selectivity = function
  | Cmp (Eq, _, _) -> 0.01
  | Cmp (Ne, _, _) -> 0.99
  | Cmp ((Lt | Le | Gt | Ge), _, _) -> 0.33
  | Like _ -> 0.05
  | IsNull _ -> 0.05
  | And es -> List.fold_left (fun acc e -> acc *. default_selectivity e) 1.0 es
  | Or es ->
      let p =
        List.fold_left
          (fun acc e -> acc *. (1.0 -. default_selectivity e))
          1.0 es
      in
      1.0 -. p
  | Not e -> 1.0 -. default_selectivity e
  | Col _ | Param _ | Const _ | Arith _ -> 1.0

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let rec pp ppf = function
  | Col i -> Format.fprintf ppf "#%d" i
  | Param n -> Format.fprintf ppf "$%d" n
  | Const v -> Value.pp ppf v
  | Cmp (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (cmp_symbol op) pp b
  | Like (a, b) -> Format.fprintf ppf "(%a LIKE %a)" pp a pp b
  | And es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " AND ")
           pp)
        es
  | Or es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " OR ")
           pp)
        es
  | Not e -> Format.fprintf ppf "(NOT %a)" pp e
  | IsNull e -> Format.fprintf ppf "(%a IS NULL)" pp e
  | Arith (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (arith_symbol op) pp b

let to_string t = Format.asprintf "%a" pp t
