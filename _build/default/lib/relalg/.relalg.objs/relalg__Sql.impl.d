lib/relalg/sql.ml: Aggregate Buffer Expr Hashtbl List Option Plan Printf Storage String
