lib/relalg/sampling.ml: Expr Float Fun Hashtbl List Memsim Mrdb_util Storage
