lib/relalg/expr.ml: Array Float Format List Printf Storage
