lib/relalg/plan.mli: Aggregate Expr Format Storage
