lib/relalg/physical.mli: Aggregate Expr Format Plan Storage
