lib/relalg/sampling.mli: Expr Storage
