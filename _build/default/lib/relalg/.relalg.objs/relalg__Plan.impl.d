lib/relalg/plan.ml: Aggregate Array Expr Format List Printf Storage String
