lib/relalg/physical.ml: Aggregate Expr Float Format List Plan Storage String
