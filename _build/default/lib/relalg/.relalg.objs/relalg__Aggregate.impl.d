lib/relalg/aggregate.ml: Expr Format Storage
