lib/relalg/expr.mli: Format Storage
