lib/relalg/sql.mli: Plan Storage
