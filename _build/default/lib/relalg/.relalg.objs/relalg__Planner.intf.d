lib/relalg/planner.mli: Expr Physical Plan Storage
