lib/relalg/aggregate.mli: Expr Format Storage
