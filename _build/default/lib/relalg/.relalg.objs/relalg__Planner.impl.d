lib/relalg/planner.ml: Expr Float List Option Physical Plan Sampling Storage
