(** Physical plans: logical operators annotated with access paths,
    selectivity and cardinality estimates.

    The estimates drive both the JiT "code generator" (which needs nothing
    beyond the structure) and the access-pattern emission of the cost model
    (which needs selectivities and cardinalities — Section IV-D). *)

type access =
  | Full_scan
  | Index_eq of { attrs : int list; keys : Expr.t list }
      (** point lookup through a hash (or ordered) index on [attrs] *)
  | Index_range of { attr : int; lo : Expr.t; hi : Expr.t }

type t =
  | Scan of { table : string; access : access; post : Expr.t option; sel : float }
      (** [post] is the residual predicate evaluated during the scan; [sel]
          is the fraction of stored tuples surviving it (or fetched through
          the index). *)
  | Select of { child : t; pred : Expr.t; sel : float }
  | Project of { child : t; exprs : (Expr.t * string) list }
  | Hash_join of {
      build : t;
      probe : t;
      build_keys : int list;
      probe_keys : int list;
      match_sel : float;  (** fraction of probe tuples finding a match *)
    }
  | Group_by of {
      child : t;
      keys : (Expr.t * string) list;
      aggs : Aggregate.t list;
      n_groups : float;
    }
  | Sort of { child : t; keys : (int * Plan.dir) list }
  | Limit of { child : t; n : int }
  | Insert of { table : string; values : Expr.t list }
  | Update of {
      table : string;
      access : access;
      post : Expr.t option;
      assignments : (int * Expr.t) list;
      sel : float;
    }

val schema : Storage.Catalog.t -> t -> Storage.Schema.attr array

val cardinality : Storage.Catalog.t -> t -> float
(** Estimated output rows. *)

val input_cols : t -> int list
(** For unary operators: the child columns this operator touches.  Used by
    pattern emission and cut generation. *)

val pp : Format.formatter -> t -> unit
