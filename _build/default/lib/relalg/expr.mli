(** Scalar expressions over the columns of an operator's input.

    Column references are positional ([Col i] is the i-th column of the
    input row); the SQL front end resolves names to positions. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod

type t =
  | Col of int
  | Param of int  (** [$n], 1-based *)
  | Const of Storage.Value.t
  | Cmp of cmp * t * t
  | Like of t * t  (** pattern is an expression evaluating to a string *)
  | And of t list
  | Or of t list
  | Not of t
  | IsNull of t
  | Arith of arith * t * t

val eval : t -> params:Storage.Value.t array -> (int -> Storage.Value.t) -> Storage.Value.t
(** Interpret the expression; comparisons yield [VBool], [Null] propagates
    through arithmetic and comparisons (three-valued logic collapsed to
    [false] at the boolean level, as in SQL [WHERE]). *)

val truthy : Storage.Value.t -> bool
(** SQL boolean coercion: [VBool true] is true, everything else false. *)

val specialize :
  t -> params:Storage.Value.t array -> (int -> Storage.Value.t) -> unit -> Storage.Value.t
(** Closure compilation — our stand-in for JiT code generation: parameters
    and constants are resolved once, and the returned thunk evaluates the
    expression with no dispatch on expression structure. *)

val cols : t -> int list
(** Referenced column positions, sorted, without duplicates. *)

val conjuncts : t -> t list
(** Flatten top-level [And]s. *)

val remap : t -> (int -> int) -> t
(** Rewrite column references. *)

val default_selectivity : t -> float
(** Textbook heuristic selectivity for a predicate (equality 0.01,
    range 0.33, LIKE 0.05, conjunction multiplies, ...). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
