(** Logical-to-physical translation.

    The planner pushes scan-level predicates into the scan, selects index
    access paths when an index covers an equality (or range) predicate, and
    annotates operators with selectivity and group-count estimates.  These
    estimates feed the cost model; callers with better knowledge (the
    benchmark workloads know their true selectivities) override the defaults
    through [estimate] and [n_groups]. *)

val plan :
  ?estimate:(Expr.t -> float option) ->
  ?sample_with:Storage.Value.t array ->
  ?n_groups:float ->
  ?use_indexes:bool ->
  Storage.Catalog.t ->
  Plan.t ->
  Physical.t
(** [estimate pred] returns the selectivity of a predicate if known;
    [sample_with params] estimates base-table predicate selectivities by
    evaluating them on a data sample with the given query parameters (see
    {!Sampling}); [n_groups] overrides the group-by cardinality estimate;
    [use_indexes] (default true) can be switched off to force full scans
    (Fig. 10's "unindexed" configurations). *)

val selectivity :
  ?estimate:(Expr.t -> float option) -> Expr.t -> float
(** The selectivity the planner would assign to a predicate. *)
