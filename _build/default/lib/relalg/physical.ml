module Schema = Storage.Schema

type access =
  | Full_scan
  | Index_eq of { attrs : int list; keys : Expr.t list }
  | Index_range of { attr : int; lo : Expr.t; hi : Expr.t }

type t =
  | Scan of { table : string; access : access; post : Expr.t option; sel : float }
  | Select of { child : t; pred : Expr.t; sel : float }
  | Project of { child : t; exprs : (Expr.t * string) list }
  | Hash_join of {
      build : t;
      probe : t;
      build_keys : int list;
      probe_keys : int list;
      match_sel : float;
    }
  | Group_by of {
      child : t;
      keys : (Expr.t * string) list;
      aggs : Aggregate.t list;
      n_groups : float;
    }
  | Sort of { child : t; keys : (int * Plan.dir) list }
  | Limit of { child : t; n : int }
  | Insert of { table : string; values : Expr.t list }
  | Update of {
      table : string;
      access : access;
      post : Expr.t option;
      assignments : (int * Expr.t) list;
      sel : float;
    }

let rec to_logical = function
  | Scan { table; post; _ } -> (
      match post with
      | None -> Plan.Scan table
      | Some pred -> Plan.Select (Plan.Scan table, pred))
  | Select { child; pred; _ } -> Plan.Select (to_logical child, pred)
  | Project { child; exprs } -> Plan.Project (to_logical child, exprs)
  | Hash_join { build; probe; build_keys; probe_keys; _ } ->
      Plan.Join
        {
          left = to_logical build;
          right = to_logical probe;
          left_keys = build_keys;
          right_keys = probe_keys;
        }
  | Group_by { child; keys; aggs; _ } ->
      Plan.Group_by { child = to_logical child; keys; aggs }
  | Sort { child; keys } -> Plan.Sort { child = to_logical child; keys }
  | Limit { child; n } -> Plan.Limit (to_logical child, n)
  | Insert { table; values } -> Plan.Insert { table; values }
  | Update { table; post; assignments; _ } ->
      Plan.Update { table; assignments; pred = post }

let schema cat t = Plan.schema cat (to_logical t)

let rec cardinality cat = function
  | Scan { table; sel; _ } ->
      sel *. float_of_int (Storage.Relation.nrows (Storage.Catalog.find cat table))
  | Select { child; sel; _ } -> sel *. cardinality cat child
  | Project { child; _ } -> cardinality cat child
  | Hash_join { probe; match_sel; _ } -> match_sel *. cardinality cat probe
  | Group_by { child; n_groups; _ } -> Float.min n_groups (cardinality cat child)
  | Sort { child; _ } -> cardinality cat child
  | Limit { child; n } -> Float.min (float_of_int n) (cardinality cat child)
  | Insert _ -> 1.0
  | Update { table; sel; _ } ->
      sel *. float_of_int (Storage.Relation.nrows (Storage.Catalog.find cat table))

let input_cols = function
  | Scan { post; _ } -> (
      match post with Some p -> Expr.cols p | None -> [])
  | Select { pred; _ } -> Expr.cols pred
  | Project { exprs; _ } ->
      List.sort_uniq compare (List.concat_map (fun (e, _) -> Expr.cols e) exprs)
  | Hash_join { build_keys; probe_keys; _ } ->
      List.sort_uniq compare (build_keys @ probe_keys)
  | Group_by { keys; aggs; _ } ->
      let key_cols = List.concat_map (fun (e, _) -> Expr.cols e) keys in
      let agg_cols =
        List.concat_map
          (fun (a : Aggregate.t) ->
            match a.Aggregate.expr with Some e -> Expr.cols e | None -> [])
          aggs
      in
      List.sort_uniq compare (key_cols @ agg_cols)
  | Sort { keys; _ } -> List.sort_uniq compare (List.map fst keys)
  | Limit _ | Insert _ -> []
  | Update { post; assignments; _ } ->
      let pred_cols = match post with Some p -> Expr.cols p | None -> [] in
      List.sort_uniq compare
        (pred_cols @ List.concat_map (fun (_, e) -> Expr.cols e) assignments)

let pp_access ppf = function
  | Full_scan -> Format.pp_print_string ppf "full"
  | Index_eq { attrs; _ } ->
      Format.fprintf ppf "index_eq[%s]"
        (String.concat "," (List.map string_of_int attrs))
  | Index_range { attr; _ } -> Format.fprintf ppf "index_range[#%d]" attr

let rec pp ppf = function
  | Scan { table; access; post; sel } ->
      Format.fprintf ppf "Scan(%s, %a%s, sel=%.4f)" table pp_access access
        (match post with
        | Some p -> ", post=" ^ Expr.to_string p
        | None -> "")
        sel
  | Select { child; pred; sel } ->
      Format.fprintf ppf "@[<v2>Select %a (sel=%.4f)@,%a@]" Expr.pp pred sel pp
        child
  | Project { child; exprs } ->
      Format.fprintf ppf "@[<v2>Project [%s]@,%a@]"
        (String.concat "; " (List.map snd exprs))
        pp child
  | Hash_join { build; probe; build_keys; probe_keys; match_sel } ->
      Format.fprintf ppf "@[<v2>HashJoin b%s=p%s (match=%.4f)@,%a@,%a@]"
        (String.concat "," (List.map string_of_int build_keys))
        (String.concat "," (List.map string_of_int probe_keys))
        match_sel pp build pp probe
  | Group_by { child; keys; aggs; n_groups } ->
      Format.fprintf ppf "@[<v2>GroupBy [%s] aggs=%d (groups=%.0f)@,%a@]"
        (String.concat "; " (List.map snd keys))
        (List.length aggs) n_groups pp child
  | Sort { child; _ } -> Format.fprintf ppf "@[<v2>Sort@,%a@]" pp child
  | Limit { child; n } -> Format.fprintf ppf "@[<v2>Limit %d@,%a@]" n pp child
  | Insert { table; _ } -> Format.fprintf ppf "Insert(%s)" table
  | Update { table; assignments; sel; _ } ->
      Format.fprintf ppf "Update(%s, %d assignments, sel=%.4f)" table
        (List.length assignments) sel
