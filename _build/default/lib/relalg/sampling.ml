module Relation = Storage.Relation
module Catalog = Storage.Catalog

let untraced cat f =
  match Catalog.hier cat with
  | Some h -> Memsim.Hierarchy.without_tracing h f
  | None -> f ()

(* A deterministic pseudo-random sample.  Plain striding aliases with
   periodic data (e.g. a column holding tid mod k when the stride is a
   multiple of k), so we draw uniformly with a fixed seed instead. *)
let sample_tids n samples =
  if n <= samples then List.init n Fun.id
  else begin
    let rng = Mrdb_util.Rng.create (0x5A11CE + n) in
    List.init samples (fun _ -> Mrdb_util.Rng.int rng n)
  end

let selectivity ?(samples = 512) cat table pred ~params =
  let rel = Catalog.find cat table in
  let n = Relation.nrows rel in
  if n = 0 then Expr.default_selectivity pred
  else
    untraced cat (fun () ->
        let tids = sample_tids n samples in
        let matched =
          List.fold_left
            (fun acc tid ->
              let col i = Relation.get rel tid i in
              if Expr.truthy (Expr.eval pred ~params col) then acc + 1 else acc)
            0 tids
        in
        let total = List.length tids in
        (* clamp: a sample with zero hits still leaves the possibility of a
           few matches; use half a hit as the floor *)
        Float.max
          (0.5 /. float_of_int total)
          (float_of_int matched /. float_of_int total))

let n_distinct ?(samples = 512) cat table attr =
  let rel = Catalog.find cat table in
  let n = Relation.nrows rel in
  if n = 0 then 1.0
  else
    untraced cat (fun () ->
        let tids = sample_tids n samples in
        let seen = Hashtbl.create 64 in
        List.iter
          (fun tid -> Hashtbl.replace seen (Relation.get rel tid attr) ())
          tids;
        let observed = float_of_int (Hashtbl.length seen) in
        let r = float_of_int (List.length tids) in
        (* sampling with replacement: the expected number of distinct values
           seen when drawing r times from a domain of size D follows
           Cardenas' formula D*(1-(1-1/D)^r); invert it for D by bisection *)
        let expected_seen d =
          if d <= 1.0 then 1.0 else d *. (1.0 -. ((1.0 -. (1.0 /. d)) ** r))
        in
        if observed >= r -. 0.5 then float_of_int n
        else begin
          let lo = ref observed and hi = ref (float_of_int n) in
          for _ = 1 to 60 do
            let mid = 0.5 *. (!lo +. !hi) in
            if expected_seen mid < observed then lo := mid else hi := mid
          done;
          Float.min (float_of_int n) !hi
        end)
