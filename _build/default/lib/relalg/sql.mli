(** A small SQL front end covering the dialect used by the paper's
    benchmarks:

    {v
    SELECT <item, ...> FROM t [JOIN t2 ON a = b ...]
      [WHERE <conjunctive predicate>]
      [GROUP BY <expr, ...>] [ORDER BY <col [ASC|DESC], ...>] [LIMIT n]
    INSERT INTO t VALUES (<expr, ...>)
    UPDATE t SET col = expr [, ...] [WHERE <predicate>]
    v}

    Items are [*], expressions with optional [AS alias], or aggregate calls
    (count-star, [sum(e)], [min], [max], [avg]).  [$n] denotes a query
    parameter.  Identifiers are case-insensitive. *)

exception Parse_error of string

val parse : Storage.Catalog.t -> string -> Plan.t
(** Parse and resolve names against the catalog.
    @raise Parse_error on syntax or resolution errors. *)
