module Catalog = Storage.Catalog
module Relation = Storage.Relation

let selectivity ?estimate pred =
  match estimate with
  | Some f -> ( match f pred with Some s -> s | None -> Expr.default_selectivity pred)
  | None -> Expr.default_selectivity pred

(* An equality conjunct binding a column to a column-free expression. *)
let eq_binding = function
  | Expr.Cmp (Expr.Eq, Expr.Col i, e) when Expr.cols e = [] -> Some (i, e)
  | Expr.Cmp (Expr.Eq, e, Expr.Col i) when Expr.cols e = [] -> Some (i, e)
  | _ -> None

(* A range conjunct [lo <= col] or [col <= hi] (and strict variants). *)
let range_binding = function
  | Expr.Cmp ((Expr.Le | Expr.Lt), Expr.Col i, e) when Expr.cols e = [] ->
      Some (i, `Hi, e)
  | Expr.Cmp ((Expr.Ge | Expr.Gt), Expr.Col i, e) when Expr.cols e = [] ->
      Some (i, `Lo, e)
  | Expr.Cmp ((Expr.Le | Expr.Lt), e, Expr.Col i) when Expr.cols e = [] ->
      Some (i, `Lo, e)
  | Expr.Cmp ((Expr.Ge | Expr.Gt), e, Expr.Col i) when Expr.cols e = [] ->
      Some (i, `Hi, e)
  | _ -> None

let residual = function [] -> None | [ e ] -> Some e | es -> Some (Expr.And es)

(* Try to serve [pred] on [table] through an index.  Returns the access path,
   the residual predicate and the estimated fraction of tuples fetched. *)
let index_access cat table pred =
  let rel = Catalog.find cat table in
  let n = float_of_int (max 1 (Relation.nrows rel)) in
  let cs = Expr.conjuncts pred in
  let eqs = List.filter_map eq_binding cs in
  let eq_cols = List.sort_uniq compare (List.map fst eqs) in
  let try_eq () =
    if eqs = [] then None
    else
      match Catalog.find_index cat table ~attrs:eq_cols with
      | None -> None
      | Some idx ->
          let key_order = Storage.Index.attrs idx in
          let keys =
            List.map (fun a -> List.assoc a eqs) key_order
          in
          let rest =
            List.filter (fun c -> eq_binding c = None) cs
          in
          Some
            ( Physical.Index_eq { attrs = key_order; keys },
              residual rest,
              1.0 /. n )
  in
  let try_range () =
    let ranges = List.filter_map range_binding cs in
    match List.sort_uniq compare (List.map (fun (i, _, _) -> i) ranges) with
    | [ col ] -> (
        match Catalog.find_index cat table ~attrs:[ col ] with
        | Some idx when Storage.Index.kind idx = Storage.Index.Rbtree ->
            let lo =
              List.fold_left
                (fun acc (_, side, e) -> if side = `Lo then Some e else acc)
                None ranges
            and hi =
              List.fold_left
                (fun acc (_, side, e) -> if side = `Hi then Some e else acc)
                None ranges
            in
            let const v = Expr.Const (Storage.Value.VInt v) in
            let lo = Option.value lo ~default:(const min_int)
            and hi = Option.value hi ~default:(const max_int) in
            let rest = List.filter (fun c -> range_binding c = None) cs in
            Some
              ( Physical.Index_range { attr = col; lo; hi },
                residual rest,
                0.05 )
        | _ -> None)
    | _ -> None
  in
  match try_eq () with Some r -> Some r | None -> try_range ()

let rec plan ?estimate ?sample_with ?n_groups ?(use_indexes = true) cat
    (l : Plan.t) : Physical.t =
  let recur c = plan ?estimate ?sample_with ?n_groups ~use_indexes cat c in
  (* data-derived selectivity for base-table predicates, when requested *)
  let table_sel table pred =
    match sample_with with
    | Some params -> Sampling.selectivity cat table pred ~params
    | None -> selectivity ?estimate pred
  in
  match l with
  | Plan.Scan table -> Physical.Scan { table; access = Full_scan; post = None; sel = 1.0 }
  | Plan.Select (Plan.Scan table, pred) -> (
      let fallback () =
        Physical.Scan
          {
            table;
            access = Full_scan;
            post = Some pred;
            sel = table_sel table pred;
          }
      in
      if not use_indexes then fallback ()
      else
        match index_access cat table pred with
        | Some (access, post, sel) ->
            let sel =
              match post with
              | None -> sel
              | Some p -> sel *. selectivity ?estimate p
            in
            Physical.Scan { table; access; post; sel }
        | None -> fallback ())
  | Plan.Select (child, pred) ->
      Physical.Select
        { child = recur child; pred; sel = selectivity ?estimate pred }
  | Plan.Project (child, exprs) -> Physical.Project { child = recur child; exprs }
  | Plan.Join { left; right; left_keys; right_keys } ->
      Physical.Hash_join
        {
          build = recur left;
          probe = recur right;
          build_keys = left_keys;
          probe_keys = right_keys;
          match_sel = 1.0;
        }
  | Plan.Group_by { child; keys; aggs } ->
      let child_p = recur child in
      let card = Physical.cardinality cat child_p in
      (* with sampling enabled and plain-column keys over a base table, the
         group count is the product of the keys' sampled distinct counts *)
      let sampled_groups () =
        match (sample_with, child_p) with
        | Some _, (Physical.Scan { table; _ } as _scan) ->
            let cols =
              List.map (fun (e, _) -> match e with Expr.Col c -> Some c | _ -> None) keys
            in
            if List.for_all Option.is_some cols then
              Some
                (List.fold_left
                   (fun acc c -> acc *. Sampling.n_distinct cat table (Option.get c))
                   1.0 cols
                |> Float.min card |> Float.max 1.0)
            else None
        | _ -> None
      in
      let groups =
        match n_groups with
        | Some g -> g
        | None -> (
            if keys = [] then 1.0
            else
              match sampled_groups () with
              | Some g -> g
              | None -> Float.min 256.0 (Float.max 1.0 card))
      in
      Physical.Group_by { child = child_p; keys; aggs; n_groups = groups }
  | Plan.Sort { child; keys } -> Physical.Sort { child = recur child; keys }
  | Plan.Limit (child, n) -> Physical.Limit { child = recur child; n }
  | Plan.Insert { table; values } -> Physical.Insert { table; values }
  | Plan.Update { table; assignments; pred } -> (
      match pred with
      | None ->
          Physical.Update
            { table; access = Full_scan; post = None; assignments; sel = 1.0 }
      | Some pred ->
          let fallback () =
            Physical.Update
              {
                table;
                access = Full_scan;
                post = Some pred;
                assignments;
                sel = table_sel table pred;
              }
          in
          if not use_indexes then fallback ()
          else (
            match index_access cat table pred with
            | Some (access, post, sel) ->
                let sel =
                  match post with
                  | None -> sel
                  | Some p -> sel *. selectivity ?estimate p
                in
                Physical.Update { table; access; post; assignments; sel }
            | None -> fallback ()))
