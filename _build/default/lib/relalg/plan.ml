module Schema = Storage.Schema
module Value = Storage.Value

type dir = Asc | Desc

type t =
  | Scan of string
  | Select of t * Expr.t
  | Project of t * (Expr.t * string) list
  | Join of { left : t; right : t; left_keys : int list; right_keys : int list }
  | Group_by of { child : t; keys : (Expr.t * string) list; aggs : Aggregate.t list }
  | Sort of { child : t; keys : (int * dir) list }
  | Limit of t * int
  | Insert of { table : string; values : Expr.t list }
  | Update of {
      table : string;
      assignments : (int * Expr.t) list;
      pred : Expr.t option;
    }

let rec type_of_expr (attrs : Schema.attr array) (e : Expr.t) :
    Value.ty * bool =
  match e with
  | Expr.Col i ->
      let a = attrs.(i) in
      (a.Schema.ty, a.Schema.nullable)
  | Expr.Param _ -> (Value.Int, false)
  | Expr.Const v -> (
      match Value.type_of v with
      | Some ty -> (ty, false)
      | None -> (Value.Int, true))
  | Expr.Cmp _ | Expr.Like _ | Expr.And _ | Expr.Or _ | Expr.Not _
  | Expr.IsNull _ ->
      (Value.Bool, false)
  | Expr.Arith (_, a, b) ->
      let ta, na = type_of_expr attrs a and tb, nb = type_of_expr attrs b in
      let ty =
        match (ta, tb) with
        | Value.Float, _ | _, Value.Float -> Value.Float
        | _ -> Value.Int
      in
      (ty, na || nb)

let rec schema cat t : Schema.attr array =
  match t with
  | Scan name -> (Storage.Relation.schema (Storage.Catalog.find cat name)).Schema.attrs
  | Select (child, _) | Limit (child, _) -> schema cat child
  | Sort { child; _ } -> schema cat child
  | Project (child, exprs) ->
      let attrs = schema cat child in
      Array.of_list
        (List.map
           (fun (e, name) ->
             let ty, nullable = type_of_expr attrs e in
             { Schema.name; ty; nullable })
           exprs)
  | Join { left; right; _ } -> Array.append (schema cat left) (schema cat right)
  | Group_by { child; keys; aggs } ->
      let attrs = schema cat child in
      let key_attrs =
        List.map
          (fun (e, name) ->
            let ty, nullable = type_of_expr attrs e in
            { Schema.name; ty; nullable })
          keys
      in
      let agg_attrs =
        List.map
          (fun (a : Aggregate.t) ->
            let ty =
              Aggregate.output_type a (fun i -> attrs.(i).Schema.ty)
            in
            { Schema.name = a.Aggregate.name; ty; nullable = true })
          aggs
      in
      Array.of_list (key_attrs @ agg_attrs)
  | Insert _ | Update _ -> [||]

let rec tables = function
  | Scan name -> [ name ]
  | Select (c, _) | Project (c, _) | Limit (c, _) -> tables c
  | Sort { child; _ } -> tables child
  | Join { left; right; _ } -> tables left @ tables right
  | Group_by { child; _ } -> tables child
  | Insert { table; _ } | Update { table; _ } -> [ table ]

let rec pp ppf = function
  | Scan name -> Format.fprintf ppf "Scan(%s)" name
  | Select (c, pred) ->
      Format.fprintf ppf "@[<v2>Select %a@,%a@]" Expr.pp pred pp c
  | Project (c, exprs) ->
      Format.fprintf ppf "@[<v2>Project [%s]@,%a@]"
        (String.concat "; "
           (List.map (fun (e, n) -> n ^ "=" ^ Expr.to_string e) exprs))
        pp c
  | Join { left; right; left_keys; right_keys } ->
      Format.fprintf ppf "@[<v2>Join l%s=r%s@,%a@,%a@]"
        (String.concat "," (List.map string_of_int left_keys))
        (String.concat "," (List.map string_of_int right_keys))
        pp left pp right
  | Group_by { child; keys; aggs } ->
      Format.fprintf ppf "@[<v2>GroupBy keys=[%s] aggs=[%s]@,%a@]"
        (String.concat "; " (List.map snd keys))
        (String.concat "; "
           (List.map (fun a -> Format.asprintf "%a" Aggregate.pp a) aggs))
        pp child
  | Sort { child; keys } ->
      Format.fprintf ppf "@[<v2>Sort [%s]@,%a@]"
        (String.concat "; "
           (List.map
              (fun (i, d) ->
                Printf.sprintf "#%d %s" i
                  (match d with Asc -> "asc" | Desc -> "desc"))
              keys))
        pp child
  | Limit (c, n) -> Format.fprintf ppf "@[<v2>Limit %d@,%a@]" n pp c
  | Insert { table; values } ->
      Format.fprintf ppf "Insert(%s, %d values)" table (List.length values)
  | Update { table; assignments; pred } ->
      Format.fprintf ppf "Update(%s, %d assignments%s)" table
        (List.length assignments)
        (match pred with
        | Some p -> ", where " ^ Expr.to_string p
        | None -> "")
