(** Aggregate functions for group-by operators. *)

type func = Count_star | Count | Sum | Min | Max | Avg

type t = {
  func : func;
  expr : Expr.t option;  (** [None] only for [Count_star] *)
  name : string;  (** output column name *)
}

val make : func -> ?expr:Expr.t -> string -> t

(** Mutable accumulation state, one per (group, aggregate). *)
type state

val init : func -> state
val step : state -> Storage.Value.t -> unit
val finish : state -> Storage.Value.t

val output_type : t -> (int -> Storage.Value.ty) -> Storage.Value.ty
(** Result type given the input column types. *)

val pp : Format.formatter -> t -> unit
