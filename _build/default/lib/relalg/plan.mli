(** Logical query plans. *)

type dir = Asc | Desc

type t =
  | Scan of string
  | Select of t * Expr.t
  | Project of t * (Expr.t * string) list
  | Join of { left : t; right : t; left_keys : int list; right_keys : int list }
      (** Equi-join; output columns are left's followed by right's.  The left
          child feeds the hash build, the right child the probe. *)
  | Group_by of { child : t; keys : (Expr.t * string) list; aggs : Aggregate.t list }
  | Sort of { child : t; keys : (int * dir) list }
  | Limit of t * int
  | Insert of { table : string; values : Expr.t list }
  | Update of {
      table : string;
      assignments : (int * Expr.t) list;
          (** attribute position, new-value expression over the old tuple *)
      pred : Expr.t option;
    }

val schema : Storage.Catalog.t -> t -> Storage.Schema.attr array
(** Output columns.  [Insert] and [Update] have an empty schema. *)

val type_of_expr : Storage.Schema.attr array -> Expr.t -> Storage.Value.ty * bool
(** Inferred type and nullability of an expression over the given input. *)

val tables : t -> string list
(** Tables referenced anywhere in the plan. *)

val pp : Format.formatter -> t -> unit
