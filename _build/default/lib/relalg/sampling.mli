(** Sampling-based selectivity estimation.

    The paper's optimizer relies on selectivity annotations; its authors
    knew their workloads' true selectivities.  For ad-hoc queries this
    module estimates them by evaluating the predicate on an untraced,
    deterministic pseudo-random sample of the stored tuples — the cheap,
    data-derived alternative to the textbook heuristics in
    {!Expr.default_selectivity}. *)

val selectivity :
  ?samples:int ->
  Storage.Catalog.t ->
  string ->
  Expr.t ->
  params:Storage.Value.t array ->
  float
(** [selectivity cat table pred ~params] evaluates [pred] on up to
    [samples] (default 512) deterministically drawn tuples, tracing
    disabled, and returns the matching fraction.  An empty table yields the
    heuristic estimate.  Results are clamped away from exactly 0 so
    downstream cardinalities stay positive. *)

val n_distinct :
  ?samples:int -> Storage.Catalog.t -> string -> int -> float
(** Estimated number of distinct values of an attribute, from a sample
    (observed distincts, scaled up by the sampling fraction when the sample
    looks near-unique, capped at the row count). *)
