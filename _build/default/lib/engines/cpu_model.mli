(** Per-engine CPU (instruction) cost constants, in cycles.

    The paper's central claim is that processing models differ in CPU
    efficiency: Volcano and HYRISE chase function pointers per tuple or per
    value, while bulk primitives and JiT-generated code run tight,
    predictable loops.  The simulator charges these constants explicitly so
    that the two performance dimensions (Fig. 1) stay separable. *)

val jit_per_value : int
(** Cost to load-and-process one value in generated code (the paper's l1). *)

val bulk_per_value : int
(** Cost per value in a bulk primitive's tight loop. *)

val hyrise_per_value : int
(** Indirect-call overhead HYRISE pays per processed value inside an N-ary
    partition (container abstraction with per-attribute virtual calls). *)

val volcano_next_call : int
(** Cost of one virtual [next()] call crossing an operator boundary:
    call/return, pipeline hazards, lost instruction-cache locality. *)

val volcano_per_value : int
(** Per-value cost inside a Volcano operator (interpreted expression step). *)

val hash_op : int
(** Cost of hashing a key and computing a slot. *)

val branch_mispredict : int
(** Penalty charged on a data-dependent branch that flips (selection with
    mid-range selectivity). *)
