lib/engines/hyrise.ml: Bulk Cpu_model
