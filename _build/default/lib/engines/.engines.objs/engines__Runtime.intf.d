lib/engines/runtime.mli: Format Memsim Relalg Storage
