lib/engines/jit.mli: Relalg Runtime Storage
