lib/engines/runtime.ml: Array Cpu_model Float Format Hashtbl List Memsim Mrdb_util Relalg Storage String
