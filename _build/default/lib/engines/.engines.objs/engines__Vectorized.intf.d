lib/engines/vectorized.mli: Relalg Runtime Storage
