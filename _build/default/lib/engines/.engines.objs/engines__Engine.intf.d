lib/engines/engine.mli: Memsim Relalg Runtime Storage
