lib/engines/engine.ml: Bulk Hyrise Jit Memsim Storage String Vectorized Volcano
