lib/engines/volcano.ml: Array Cpu_model Dml List Memsim Relalg Runtime Storage
