lib/engines/hyrise.mli: Relalg Runtime Storage
