lib/engines/bulk.ml: Array Cpu_model Dml Fun List Memsim Relalg Runtime Storage
