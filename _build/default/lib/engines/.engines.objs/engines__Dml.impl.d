lib/engines/dml.ml: List Relalg Runtime Storage
