lib/engines/dml.mli: Relalg Storage
