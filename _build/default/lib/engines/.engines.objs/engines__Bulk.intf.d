lib/engines/bulk.mli: Relalg Runtime Storage
