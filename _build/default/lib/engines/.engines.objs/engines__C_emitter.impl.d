lib/engines/c_emitter.ml: Array Buffer List Printf Relalg Storage String
