lib/engines/vectorized.ml: Array Bulk Cpu_model List Memsim Option Relalg Runtime Storage
