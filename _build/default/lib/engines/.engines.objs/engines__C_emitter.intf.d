lib/engines/c_emitter.mli: Relalg Storage
