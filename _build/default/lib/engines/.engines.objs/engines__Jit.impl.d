lib/engines/jit.ml: Array Cpu_model Dml List Memsim Relalg Runtime Storage
