lib/engines/cpu_model.mli:
