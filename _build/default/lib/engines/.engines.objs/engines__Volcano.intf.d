lib/engines/volcano.mli: Relalg Runtime Storage
