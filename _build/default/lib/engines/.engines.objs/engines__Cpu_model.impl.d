lib/engines/cpu_model.ml:
