module Catalog = Storage.Catalog
module Relation = Storage.Relation
module Layout = Storage.Layout
module Schema = Storage.Schema
module Value = Storage.Value
module Physical = Relalg.Physical
module Expr = Relalg.Expr
module Aggregate = Relalg.Aggregate

type ctx = {
  cat : Catalog.t;
  buf : Buffer.t;
  mutable indent : int;
  mutable tmp : int;
}

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let fresh ctx prefix =
  ctx.tmp <- ctx.tmp + 1;
  Printf.sprintf "%s%d" prefix ctx.tmp

let c_type = function
  | Value.Int | Value.Date -> "int64_t"
  | Value.Float -> "double"
  | Value.Bool -> "bool"
  | Value.Varchar n -> Printf.sprintf "char[%d]" n

let sanitize name =
  String.map (fun c -> if c = ' ' || c = '(' || c = ')' || c = '*' then '_' else c) name

(* A "slot" describes how an operator's output column is available in the
   generated code: as a C expression string. *)
type slots = string array

let rec c_expr (slots : slots) params e =
  match (e : Expr.t) with
  | Expr.Col i -> slots.(i)
  | Expr.Param n -> (
      ignore params;
      Printf.sprintf "param%d" n)
  | Expr.Const v -> (
      match v with
      | Value.VInt x -> string_of_int x
      | Value.VFloat f -> Printf.sprintf "%g" f
      | Value.VBool b -> if b then "true" else "false"
      | Value.VDate d -> string_of_int d
      | Value.VStr s -> Printf.sprintf "%S" s
      | Value.Null -> "NULL")
  | Expr.Cmp (op, a, b) ->
      let sym =
        match op with
        | Expr.Eq -> "=="
        | Expr.Ne -> "!="
        | Expr.Lt -> "<"
        | Expr.Le -> "<="
        | Expr.Gt -> ">"
        | Expr.Ge -> ">="
      in
      Printf.sprintf "(%s %s %s)" (c_expr slots params a) sym (c_expr slots params b)
  | Expr.Like (a, b) ->
      Printf.sprintf "like(%s, %s)" (c_expr slots params a) (c_expr slots params b)
  | Expr.And es ->
      "(" ^ String.concat " && " (List.map (c_expr slots params) es) ^ ")"
  | Expr.Or es ->
      "(" ^ String.concat " || " (List.map (c_expr slots params) es) ^ ")"
  | Expr.Not a -> Printf.sprintf "(!%s)" (c_expr slots params a)
  | Expr.IsNull a -> Printf.sprintf "is_null(%s)" (c_expr slots params a)
  | Expr.Arith (op, a, b) ->
      let sym =
        match op with
        | Expr.Add -> "+"
        | Expr.Sub -> "-"
        | Expr.Mul -> "*"
        | Expr.Div -> "/"
        | Expr.Mod -> "%"
      in
      Printf.sprintf "(%s %s %s)" (c_expr slots params a) sym (c_expr slots params b)

(* struct definition for a relation's partitions *)
let emit_struct ctx table =
  let rel = Catalog.find ctx.cat table in
  let schema = Relation.schema rel in
  let layout = Relation.layout rel in
  line ctx "struct %s_t {" table;
  ctx.indent <- ctx.indent + 1;
  Array.iteri
    (fun p attrs ->
      if Array.length attrs = 1 then begin
        let a = Schema.attr schema attrs.(0) in
        line ctx "%s %s[N_%s];" (c_type a.Schema.ty) a.Schema.name table
      end
      else begin
        line ctx "struct {";
        ctx.indent <- ctx.indent + 1;
        Array.iter
          (fun ai ->
            let a = Schema.attr schema ai in
            line ctx "%s %s;" (c_type a.Schema.ty) a.Schema.name)
          attrs;
        ctx.indent <- ctx.indent - 1;
        line ctx "} p%d[N_%s];" p table
      end)
    (Layout.partitions layout);
  ctx.indent <- ctx.indent - 1;
  line ctx "};"

(* C expression for attribute [a] of the current tuple of [table] *)
let attr_access ctx table tid a =
  let rel = Catalog.find ctx.cat table in
  let schema = Relation.schema rel in
  let layout = Relation.layout rel in
  let p = Layout.partition_of_attr layout a in
  let name = (Schema.attr schema a).Schema.name in
  if Array.length (Layout.partition_attrs layout p) = 1 then
    Printf.sprintf "%s->%s[%s]" table name tid
  else Printf.sprintf "%s->p%d[%s].%s" table p tid name

let rec produce ctx (plan : Physical.t) (consume : slots -> unit) =
  match plan with
  | Physical.Scan { table; access; post; _ } ->
      let rel = Catalog.find ctx.cat table in
      let arity = Schema.arity (Relation.schema rel) in
      let tid = fresh ctx "tid" in
      (match access with
      | Physical.Full_scan ->
          line ctx "for (int64_t %s = 0; %s < N_%s; ++%s) {" tid tid table tid
      | Physical.Index_eq _ ->
          line ctx "for (int64_t %s : %s_index_lookup(key)) {" tid table
      | Physical.Index_range _ ->
          line ctx "for (int64_t %s : %s_index_range(lo, hi)) {" tid table);
      ctx.indent <- ctx.indent + 1;
      let slots = Array.init arity (attr_access ctx table tid) in
      (match post with
      | Some pred ->
          line ctx "if (%s) {" (c_expr slots [||] pred);
          ctx.indent <- ctx.indent + 1;
          consume slots;
          ctx.indent <- ctx.indent - 1;
          line ctx "}"
      | None -> consume slots);
      ctx.indent <- ctx.indent - 1;
      line ctx "}"
  | Physical.Select { child; pred; _ } ->
      produce ctx child (fun slots ->
          line ctx "if (%s) {" (c_expr slots [||] pred);
          ctx.indent <- ctx.indent + 1;
          consume slots;
          ctx.indent <- ctx.indent - 1;
          line ctx "}")
  | Physical.Project { child; exprs } ->
      produce ctx child (fun slots ->
          let out =
            Array.of_list
              (List.map
                 (fun (e, name) ->
                   let v = sanitize name in
                   line ctx "auto %s = %s;" v (c_expr slots [||] e);
                   v)
                 exprs)
          in
          consume out)
  | Physical.Hash_join { build; probe; build_keys; probe_keys; _ } ->
      let ht = fresh ctx "ht" in
      let build_arity = Array.length (Physical.schema ctx.cat build) in
      line ctx "hashtable %s;" ht;
      produce ctx build (fun slots ->
          line ctx "%s.insert({%s}, {%s});" ht
            (String.concat ", " (List.map (fun k -> slots.(k)) build_keys))
            (String.concat ", " (Array.to_list slots)));
      produce ctx probe (fun slots ->
          let m = fresh ctx "m" in
          line ctx "for (auto* %s : %s.lookup({%s})) {" m ht
            (String.concat ", " (List.map (fun k -> slots.(k)) probe_keys));
          ctx.indent <- ctx.indent + 1;
          let out =
            Array.init
              (build_arity + Array.length slots)
              (fun i ->
                if i < build_arity then Printf.sprintf "%s->v%d" m i
                else slots.(i - build_arity))
          in
          consume out;
          ctx.indent <- ctx.indent - 1;
          line ctx "}")
  | Physical.Group_by { child; keys; aggs; _ } ->
      let n_keys = List.length keys in
      if keys = [] then begin
        (* global aggregation: accumulators live in registers (Fig. 2c) *)
        List.iter
          (fun (a : Aggregate.t) ->
            line ctx "auto %s = init_%s();" (sanitize a.Aggregate.name)
              (match a.Aggregate.func with
              | Aggregate.Count_star | Aggregate.Count -> "count"
              | Aggregate.Sum -> "sum"
              | Aggregate.Min -> "min"
              | Aggregate.Max -> "max"
              | Aggregate.Avg -> "avg"))
          aggs;
        produce ctx child (fun slots ->
            List.iter
              (fun (a : Aggregate.t) ->
                match a.Aggregate.expr with
                | Some e ->
                    line ctx "%s += %s;" (sanitize a.Aggregate.name)
                      (c_expr slots [||] e)
                | None -> line ctx "%s += 1;" (sanitize a.Aggregate.name))
              aggs);
        let out =
          Array.of_list
            (List.map (fun (a : Aggregate.t) -> sanitize a.Aggregate.name) aggs)
        in
        consume out
      end
      else begin
        let groups = fresh ctx "groups" in
        line ctx "aggtable %s;" groups;
        produce ctx child (fun slots ->
            line ctx "%s.update({%s}, {%s});" groups
              (String.concat ", "
                 (List.map (fun (e, _) -> c_expr slots [||] e) keys))
              (String.concat ", "
                 (List.map
                    (fun (a : Aggregate.t) ->
                      match a.Aggregate.expr with
                      | Some e -> c_expr slots [||] e
                      | None -> "1")
                    aggs)));
        let g = fresh ctx "g" in
        line ctx "for (auto* %s : %s) {" g groups;
        ctx.indent <- ctx.indent + 1;
        let out =
          Array.init
            (n_keys + List.length aggs)
            (fun i ->
              if i < n_keys then Printf.sprintf "%s->key%d" g i
              else Printf.sprintf "%s->agg%d" g (i - n_keys))
        in
        consume out;
        ctx.indent <- ctx.indent - 1;
        line ctx "}"
      end
  | Physical.Sort { child; keys } ->
      let run = fresh ctx "run" in
      line ctx "vector %s;" run;
      produce ctx child (fun slots ->
          line ctx "%s.push_back({%s});" run
            (String.concat ", " (Array.to_list slots)));
      line ctx "sort(%s, by(%s));" run
        (String.concat ", "
           (List.map
              (fun (i, d) ->
                Printf.sprintf "%d %s" i
                  (match (d : Relalg.Plan.dir) with
                  | Relalg.Plan.Asc -> "asc"
                  | Relalg.Plan.Desc -> "desc"))
              keys));
      let r = fresh ctx "r" in
      line ctx "for (auto* %s : %s) {" r run;
      ctx.indent <- ctx.indent + 1;
      let arity = Array.length (Physical.schema ctx.cat child) in
      consume (Array.init arity (fun i -> Printf.sprintf "%s->v%d" r i));
      ctx.indent <- ctx.indent - 1;
      line ctx "}"
  | Physical.Limit { child; n } ->
      let c = fresh ctx "seen" in
      line ctx "int64_t %s = 0;" c;
      produce ctx child (fun slots ->
          line ctx "if (%s++ < %d) {" c n;
          ctx.indent <- ctx.indent + 1;
          consume slots;
          ctx.indent <- ctx.indent - 1;
          line ctx "}")
  | Physical.Insert { table; values } ->
      line ctx "%s_append({%s});" table
        (String.concat ", " (List.map (c_expr [||] [||]) values));
      consume [||]
  | Physical.Update { table; access; post; assignments; _ } ->
      let rel = Catalog.find ctx.cat table in
      let arity = Schema.arity (Relation.schema rel) in
      let tid = fresh ctx "tid" in
      (match access with
      | Physical.Full_scan ->
          line ctx "for (int64_t %s = 0; %s < N_%s; ++%s) {" tid tid table tid
      | Physical.Index_eq _ ->
          line ctx "for (int64_t %s : %s_index_lookup(key)) {" tid table
      | Physical.Index_range _ ->
          line ctx "for (int64_t %s : %s_index_range(lo, hi)) {" tid table);
      ctx.indent <- ctx.indent + 1;
      let slots = Array.init arity (attr_access ctx table tid) in
      let body () =
        List.iter
          (fun (a, e) ->
            line ctx "%s = %s;" slots.(a) (c_expr slots [||] e))
          assignments
      in
      (match post with
      | Some pred ->
          line ctx "if (%s) {" (c_expr slots [||] pred);
          ctx.indent <- ctx.indent + 1;
          body ();
          ctx.indent <- ctx.indent - 1;
          line ctx "}"
      | None -> body ());
      ctx.indent <- ctx.indent - 1;
      line ctx "}";
      consume [||]

let emit cat plan =
  let ctx = { cat; buf = Buffer.create 1024; indent = 0; tmp = 0 } in
  (* struct definitions for every scanned table *)
  let rec scan_tables acc = function
    | Physical.Scan { table; _ }
    | Physical.Insert { table; _ }
    | Physical.Update { table; _ } ->
        table :: acc
    | Physical.Select { child; _ }
    | Physical.Project { child; _ }
    | Physical.Group_by { child; _ }
    | Physical.Sort { child; _ }
    | Physical.Limit { child; _ } ->
        scan_tables acc child
    | Physical.Hash_join { build; probe; _ } ->
        scan_tables (scan_tables acc build) probe
  in
  let tables = List.sort_uniq compare (scan_tables [] plan) in
  List.iter (emit_struct ctx) tables;
  line ctx "";
  line ctx "void query(%s, row_buffer* out) {"
    (String.concat ", "
       (List.map (fun t -> Printf.sprintf "const struct %s_t* %s" t t) tables));
  ctx.indent <- 1;
  produce ctx plan (fun slots ->
      line ctx "out->emit(%s);" (String.concat ", " (Array.to_list slots)));
  ctx.indent <- 0;
  line ctx "}";
  Buffer.contents ctx.buf
