let run cat plan ~params =
  Bulk.run ~per_value:Cpu_model.hyrise_per_value cat plan ~params
