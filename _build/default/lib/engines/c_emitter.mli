(** C99 rendering of JiT-compiled plans — the style of the paper's Fig. 2c.

    HyPer generates LLVM assembler; for inspection the paper shows the
    equivalent C.  This module renders the code our closure compiler would
    correspond to: one struct per stored partition (PDSM-aware), operators
    fused into loops, values kept in locals until no longer needed.  The
    output is documentation, not compiled — the executable semantics live in
    {!Jit}. *)

val emit : Storage.Catalog.t -> Relalg.Physical.t -> string
