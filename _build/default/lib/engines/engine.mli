(** Engine dispatch and measured execution.

    Five processing models over the same physical plans: Volcano iterators,
    bulk (column-at-a-time), vectorized (X100-style, cache-resident
    vectors), HYRISE-style (bulk with per-value call costs) and JiT
    (fused compiled pipelines). *)

type kind = Volcano | Bulk | Vectorized | Hyrise | Jit

val all : kind list
val name : kind -> string
val of_name : string -> kind option

val run :
  kind ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result

val run_measured :
  ?cold:bool ->
  kind ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result * Memsim.Stats.t
(** Reset the simulator counters (and, when [cold] — the default — the cache
    contents), run the query, and return the result together with the
    counters it produced.  If the catalog has no hierarchy attached the
    stats are all zero. *)
