let jit_per_value = 1
let bulk_per_value = 1
let hyrise_per_value = 60
let volcano_next_call = 120
let volcano_per_value = 8
let hash_op = 3
let branch_mispredict = 15
