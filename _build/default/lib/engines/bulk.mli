(** A bulk (column-at-a-time) processor in the MonetDB tradition.

    Each operator is a tight loop over one column that fully materializes
    its intermediate result (candidate-position vectors and value vectors)
    in simulator-visible buffers — CPU efficient, but cache inefficient at
    high selectivities because of the materialization traffic, exactly the
    trade-off of Fig. 3.

    The [per_value] CPU cost parameterizes the engine: with
    {!Cpu_model.bulk_per_value} it models MonetDB-style primitives; with
    {!Cpu_model.hyrise_per_value} it models HYRISE's partition-at-a-time
    processing, whose per-value function calls dominate (Fig. 9). *)

val run :
  ?per_value:int ->
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result
