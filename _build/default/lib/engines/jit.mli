(** The JiT-compiled query engine (HyPer's data-centric model, Section III-B).

    A physical plan is "compiled" once into a tree of OCaml closures: all
    table/partition/offset lookups, predicate constants and query parameters
    are resolved at compile time, and execution runs one tight loop per
    pipeline with no dispatch on the plan structure — our OCaml stand-in for
    LLVM code generation.  Rows in flight are lazy accessors, so a column is
    fetched from storage only when an operator actually uses it: exactly the
    conditional-read behaviour the paper's [s_trav_cr] pattern models. *)

val run :
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result
