(** A Volcano-style iterator engine (Section II-A).

    Operators are objects exposing a virtual [next()] returning one tuple;
    every call crosses an operator boundary through a function pointer and
    is charged {!Cpu_model.volcano_next_call}.  Scans materialize the full
    tuple regardless of which attributes the query needs — the "arbitrarily
    wide tuples with generic operators" behaviour that makes the model
    storage-layout agnostic and CPU inefficient. *)

val run :
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result
