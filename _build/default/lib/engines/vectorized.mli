(** A vectorized (X100-style) processor — the middle ground the paper cites
    between bulk processing and JiT compilation (Sompolski et al.,
    "Vectorization vs. Compilation in Query Execution").

    Like the bulk engine it runs tight per-primitive loops, but it processes
    vectors of {!vector_size} tuples at a time and reuses the same
    cache-resident intermediate buffers for every vector, so materialization
    traffic stays in the L1/L2 caches instead of streaming through memory —
    removing bulk processing's high-selectivity penalty at the price of
    per-vector bookkeeping.

    Plans containing joins fall back to the bulk engine (vectorized joins
    add nothing to the experiments this repository reproduces). *)

val vector_size : int

val run :
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result
