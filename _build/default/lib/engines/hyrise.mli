(** A HYRISE-style hybrid-storage processor.

    The paper characterizes HYRISE as "bulk-oriented but still relying on
    function calls to process multiple attributes within one partition",
    which gives it the same relative costs across layouts as the JiT engine
    but a much higher constant factor (Fig. 9).  We model it as the bulk
    dataflow charged with {!Cpu_model.hyrise_per_value} per processed
    value. *)

val run :
  Storage.Catalog.t ->
  Relalg.Physical.t ->
  params:Storage.Value.t array ->
  Runtime.result
