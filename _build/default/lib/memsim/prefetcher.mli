(** Adjacent-cache-line prefetcher with stride detection.

    Models the strategy the paper assumes (Section IV-A1, Intel Core
    microarchitecture): a line is prefetched whenever the unit observes an
    access adjacent to the previous one, or a repeated constant stride.  The
    unit is deliberately cautious — a stride must be confirmed before any
    prefetch is issued, matching the paper's remark that real prefetchers
    follow defensive strategies. *)

type t

val create : streams:int -> t
(** [create ~streams] tracks up to [streams] concurrent access streams
    (LRU-replaced). *)

val observe : t -> int -> int option
(** [observe t line] records a demand access to LLC [line] and returns
    [Some l'] if line [l'] should be prefetched now:
    - the access is adjacent to the stream's previous line (delta = 1):
      prefetch [line + 1];
    - the delta repeats the stream's detected stride: prefetch [line + stride].
    Repeated accesses to the stream's current line return [None]. *)

val clear : t -> unit
