type point = {
  region_bytes : int;
  cycles_per_access : float;
  accesses : int;
}

let sizes ~min_bytes ~max_bytes =
  let rec go acc s =
    if s > max_bytes then List.rev acc
    else go (s :: acc) (s * 2)
  in
  go [] min_bytes

let measure hier ~base ~region_bytes ~accesses ~order =
  Hierarchy.reset hier;
  let n = region_bytes / 8 in
  (* warm-up pass over the whole region so that the measured pass observes
     steady-state behaviour (hits when the region fits a level, capacity
     misses when it does not) *)
  for i = 0 to n - 1 do
    Hierarchy.read hier ~addr:(base + (order n i * 8)) ~width:8
  done;
  Hierarchy.reset_stats hier;
  for i = 0 to accesses - 1 do
    let slot = order n i in
    Hierarchy.read hier ~addr:(base + (slot * 8)) ~width:8
  done;
  let s = Hierarchy.stats hier in
  {
    region_bytes;
    cycles_per_access = float_of_int s.Stats.mem_cycles /. float_of_int accesses;
    accesses;
  }

let run ~order ?(accesses = 200_000) ?(min_bytes = 1024)
    ?(max_bytes = 32 * 1024 * 1024) params =
  let hier = Hierarchy.create ~params () in
  List.map
    (fun region_bytes ->
      measure hier ~base:0 ~region_bytes ~accesses ~order:(order region_bytes))
    (sizes ~min_bytes ~max_bytes)

let run_random ?accesses ?min_bytes ?max_bytes params =
  let order region_bytes =
    let n = region_bytes / 8 in
    let rng = Mrdb_util.Rng.create (0x5EED + region_bytes) in
    let perm = Mrdb_util.Rng.permutation rng n in
    fun _n i -> perm.(i mod n)
  in
  run ~order ?accesses ?min_bytes ?max_bytes params

let run_sequential ?accesses ?min_bytes ?max_bytes params =
  let order _region_bytes = fun n i -> i mod n in
  run ~order ?accesses ?min_bytes ?max_bytes params

(* Pick, for each level, the measured point whose region is half the level's
   capacity (fits entirely), and attribute the increase over the previous
   plateau to this level's latency. *)
let fit_latencies (params : Params.t) points =
  let value_at bytes =
    let best =
      List.fold_left
        (fun acc p ->
          match acc with
          | None -> Some p
          | Some q ->
              if
                abs (p.region_bytes - bytes) < abs (q.region_bytes - bytes)
              then Some p
              else Some q)
        None points
    in
    match best with Some p -> p.cycles_per_access | None -> 0.0
  in
  let plateaus =
    Array.to_list
      (Array.map
         (fun (l : Params.level) -> (l.name, value_at (l.capacity / 2)))
         params.levels)
  in
  let deepest = List.fold_left (fun acc p -> max acc p.region_bytes) 0 points in
  let plateaus = plateaus @ [ ("Memory", value_at deepest) ] in
  let rec diffs prev = function
    | [] -> []
    | (name, v) :: rest ->
        (name, int_of_float (Float.round (v -. prev))) :: diffs v rest
  in
  match plateaus with
  | (name, v) :: rest ->
      (name, int_of_float (Float.round v)) :: diffs v rest
  | [] -> []
