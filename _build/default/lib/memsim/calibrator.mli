(** The "configuring experiment" of Section VI-A (Fig. 8).

    Sums a constant number of values drawn from memory regions of growing
    size and reports the cost per access.  When the region exceeds a cache
    level's capacity the per-access cost climbs to the next plateau, exposing
    the level's latency — exactly how the paper derives Table III. *)

type point = {
  region_bytes : int;
  cycles_per_access : float;
  accesses : int;
}

val run_random :
  ?accesses:int -> ?min_bytes:int -> ?max_bytes:int -> Params.t -> point list
(** Random permutation walk (pointer-chase style): defeats the prefetcher, so
    plateaus show the full (non-hidden) latencies. *)

val run_sequential :
  ?accesses:int -> ?min_bytes:int -> ?max_bytes:int -> Params.t -> point list
(** Sequential scan of the region (wrapping): prefetching hides most LLC
    latency; included to contrast with {!run_random}. *)

val fit_latencies : Params.t -> point list -> (string * int) list
(** [fit_latencies params points] recovers per-level incremental latencies
    from the plateaus of a {!run_random} curve: for each level the measured
    cost at a region size comfortably inside it, minus the previous plateau.
    Returns [(level name, estimated latency)] pairs ending with ["Memory"]. *)
