lib/memsim/prefetcher.ml: Array
