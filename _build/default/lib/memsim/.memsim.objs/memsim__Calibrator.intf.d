lib/memsim/calibrator.mli: Params
