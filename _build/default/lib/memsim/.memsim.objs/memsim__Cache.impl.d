lib/memsim/cache.ml: Array Params
