lib/memsim/params.mli: Format
