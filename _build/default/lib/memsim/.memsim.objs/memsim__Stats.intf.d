lib/memsim/stats.mli: Format
