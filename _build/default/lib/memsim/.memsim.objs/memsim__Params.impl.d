lib/memsim/params.ml: Array Format
