lib/memsim/prefetcher.mli:
