lib/memsim/hierarchy.ml: Array Cache Fun Hashtbl Params Prefetcher Stats
