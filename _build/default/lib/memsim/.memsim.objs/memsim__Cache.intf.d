lib/memsim/cache.mli: Params
