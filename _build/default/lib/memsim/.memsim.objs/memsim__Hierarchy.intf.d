lib/memsim/hierarchy.mli: Params Stats
