lib/memsim/stats.ml: Format
