lib/memsim/calibrator.ml: Array Float Hierarchy List Mrdb_util Params Stats
