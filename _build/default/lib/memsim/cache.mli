(** A single set-associative LRU cache level operating on line numbers.

    The cache does not store data, only tags: the simulator is a timing and
    miss-count model, the actual bytes live in {!Storage.Buffer} byte arrays. *)

type t

val create : Params.level -> t
(** [create level] builds an empty cache with [level]'s geometry.  Capacities
    that are not an exact multiple of [block * assoc] are rounded down to at
    least one set. *)

val block_bits : t -> int
(** log2 of the block size: [line = addr lsr block_bits t]. *)

val access : t -> int -> bool
(** [access t line] looks up [line]; on a miss the line is inserted, evicting
    the LRU way of its set.  Returns [true] on a hit. *)

val insert : t -> int -> unit
(** [insert t line] fills [line] without counting it as a demand access (used
    by the prefetcher). Inserting an already-present line refreshes its age. *)

val mem : t -> int -> bool
(** [mem t line] is a lookup without any side effect. *)

val clear : t -> unit

val name : t -> string
