(** The composed memory-hierarchy simulator.

    Every data-plane byte the database engines touch flows through {!read} or
    {!write}; the simulator walks TLB / L1 / L2 / LLC, consults the
    prefetcher, and accounts cycles per Table III of the paper.  Execution
    engines additionally charge instruction costs through {!add_cpu} — the
    paper's two performance dimensions (cache efficiency and CPU efficiency)
    are thus two separate counters of one {!Stats.t}. *)

type t

val create : ?params:Params.t -> unit -> t
(** [create ()] uses {!Params.nehalem}. *)

val params : t -> Params.t

val read : t -> addr:int -> width:int -> unit
(** Simulate a load of [width] bytes at virtual address [addr].  The access is
    decomposed into 8-byte words, each probing the hierarchy. *)

val write : t -> addr:int -> width:int -> unit
(** Simulate a store.  Timing model is identical to {!read} (write-allocate). *)

val add_cpu : t -> int -> unit
(** Charge [n] CPU cycles of instruction work (predicate evaluation, hashing,
    virtual-call overhead, ...). *)

val stats : t -> Stats.t
(** Live counters (mutable; use {!Stats.copy} for snapshots). *)

val snapshot : t -> Stats.t

val reset_stats : t -> unit
(** Zero the counters, keeping cache contents (to measure warm behaviour). *)

val reset : t -> unit
(** Zero counters and flush all caches, TLB, prefetcher state. *)

val set_enabled : t -> bool -> unit
(** When disabled, {!read}, {!write} and {!add_cpu} are no-ops.  Used to
    exclude setup work (loading, repartitioning, index builds) from
    measurements, and for fast untraced wall-clock benchmarking. *)

val enabled : t -> bool

val without_tracing : t -> (unit -> 'a) -> 'a
(** Run a thunk with tracing disabled, restoring the previous state. *)
