type t = {
  name : string;
  sets : int;
  assoc : int;
  block_bits : int;
  tags : int array; (* sets * assoc; -1 = invalid *)
  ages : int array; (* LRU timestamps *)
  mutable clock : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (l : Params.level) =
  assert (l.block > 0 && l.block land (l.block - 1) = 0);
  let sets = max 1 (l.capacity / (l.block * l.assoc)) in
  {
    name = l.name;
    sets;
    assoc = l.assoc;
    block_bits = log2 l.block;
    tags = Array.make (sets * l.assoc) (-1);
    ages = Array.make (sets * l.assoc) 0;
    clock = 0;
  }

let block_bits t = t.block_bits
let name t = t.name

let set_base t line = line mod t.sets * t.assoc

let find t line =
  let base = set_base t line in
  let rec go i =
    if i >= t.assoc then -1
    else if t.tags.(base + i) = line then base + i
    else go (i + 1)
  in
  go 0

let touch_slot t slot =
  t.clock <- t.clock + 1;
  t.ages.(slot) <- t.clock

let victim t line =
  let base = set_base t line in
  let rec go i best best_age =
    if i >= t.assoc then best
    else
      let slot = base + i in
      if t.tags.(slot) = -1 then slot
      else if t.ages.(slot) < best_age then go (i + 1) slot t.ages.(slot)
      else go (i + 1) best best_age
  in
  go 1 base t.ages.(base)

let access t line =
  let slot = find t line in
  if slot >= 0 then begin
    touch_slot t slot;
    true
  end
  else begin
    let v = victim t line in
    t.tags.(v) <- line;
    touch_slot t v;
    false
  end

let insert t line =
  let slot = find t line in
  if slot >= 0 then touch_slot t slot
  else begin
    let v = victim t line in
    t.tags.(v) <- line;
    touch_slot t v
  end

let mem t line = find t line >= 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.clock <- 0
