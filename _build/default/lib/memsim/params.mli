(** Parameters of a simulated memory hierarchy.

    The defaults mirror Table III of the paper (Intel Nehalem X5650):
    capacities, block sizes and per-level access latencies in CPU cycles. *)

type level = {
  name : string;  (** human-readable level name, e.g. ["L1"] *)
  capacity : int;  (** total capacity in bytes *)
  block : int;  (** block (cache line) size in bytes; must be a power of two *)
  latency : int;  (** incremental access latency in cycles when this level is reached *)
  assoc : int;  (** set associativity *)
}

type t = {
  levels : level array;  (** cache levels ordered from fastest (L1) to the LLC *)
  tlb : level;  (** TLB modeled as a cache of pages *)
  memory_latency : int;  (** additional cycles for an LLC miss served by RAM *)
  prefetch_streams : int;  (** number of concurrently tracked prefetch streams *)
}

val nehalem : t
(** The configuration of Table III: L1 32kB/8B/1cyc, L2 256kB/64B/3cyc,
    TLB 32kB(coverage)/4kB/1cyc, L3 8MB/64B/8cyc, memory 12cyc. *)

val scaled : ?l1:int -> ?l2:int -> ?l3:int -> t -> t
(** [scaled ?l1 ?l2 ?l3 p] overrides cache capacities (bytes), keeping block
    sizes and latencies.  Useful for tests that need tiny caches. *)

val line_size : t -> int
(** Block size of the LLC (the granularity at which prefetching operates). *)

val pp : Format.formatter -> t -> unit
