type level = {
  name : string;
  capacity : int;
  block : int;
  latency : int;
  assoc : int;
}

type t = {
  levels : level array;
  tlb : level;
  memory_latency : int;
  prefetch_streams : int;
}

let nehalem =
  {
    levels =
      [|
        { name = "L1"; capacity = 32 * 1024; block = 8; latency = 1; assoc = 8 };
        { name = "L2"; capacity = 256 * 1024; block = 64; latency = 3; assoc = 8 };
        { name = "L3"; capacity = 8 * 1024 * 1024; block = 64; latency = 8; assoc = 16 };
      |];
    tlb = { name = "TLB"; capacity = 32 * 1024; block = 4096; latency = 1; assoc = 4 };
    memory_latency = 12;
    prefetch_streams = 16;
  }

let scaled ?l1 ?l2 ?l3 p =
  let override i cap =
    match cap with
    | None -> p.levels.(i)
    | Some capacity -> { (p.levels.(i)) with capacity }
  in
  { p with levels = [| override 0 l1; override 1 l2; override 2 l3 |] }

let line_size p = p.levels.(Array.length p.levels - 1).block

let pp_level ppf l =
  Format.fprintf ppf "%-4s %8d B  block %4d B  %2d cyc  %d-way" l.name
    l.capacity l.block l.latency l.assoc

let pp ppf p =
  Array.iter (fun l -> Format.fprintf ppf "%a@." pp_level l) p.levels;
  Format.fprintf ppf "%a@." pp_level p.tlb;
  Format.fprintf ppf "Mem  %d cyc" p.memory_latency
