(** Aligned plain-text tables for benchmark output. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [rowf t fmt ...] appends a single-cell row (useful for footnotes). *)

val render : t -> string
(** Render with a header separator and right-padded columns. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
