lib/util/texttab.ml: Array Buffer List Printf String
