lib/util/texttab.mli:
