lib/util/rng.mli:
