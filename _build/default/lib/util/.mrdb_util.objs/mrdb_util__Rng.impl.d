lib/util/rng.ml: Array Float Int64 String
