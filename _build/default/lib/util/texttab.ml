type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let row t cells = t.rows <- cells :: t.rows

let rowf t fmt = Printf.ksprintf (fun s -> row t [ s ]) fmt

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let pad r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let all = List.map pad all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun r ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r)
    all;
  let buf = Buffer.create 256 in
  let emit r =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length c) ' '))
      r;
    Buffer.add_char buf '\n'
  in
  (match all with
  | header :: rest ->
      emit header;
      let total =
        Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
      in
      Buffer.add_string buf (String.make total '-');
      Buffer.add_char buf '\n';
      List.iter emit rest
  | [] -> ());
  Buffer.contents buf

let print t = print_string (render t); print_newline ()
