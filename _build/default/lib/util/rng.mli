(** Deterministic pseudo-random number generation (SplitMix64).

    All data generators in this repository draw from this module with fixed
    seeds so that every experiment is exactly reproducible. *)

type t

val create : int -> t
(** [create seed] builds an independent generator. *)

val split : t -> t
(** [split t] derives a statistically independent child generator,
    advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] samples from a Zipf distribution over [\[0, n)] with
    skew [theta] (0 = uniform). Uses the rejection-free CDF-inversion over a
    precomputed-free approximation; adequate for workload generation. *)

val string : t -> alphabet:string -> len:int -> string
(** Random fixed-length string over [alphabet]. *)
