lib/costmodel/emit.mli: Format Pattern Relalg Storage
