lib/costmodel/pattern.mli: Format
