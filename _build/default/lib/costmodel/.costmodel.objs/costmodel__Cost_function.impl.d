lib/costmodel/cost_function.ml: Array Float List Memsim Miss_model Pattern
