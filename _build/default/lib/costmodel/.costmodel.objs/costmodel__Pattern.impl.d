lib/costmodel/pattern.ml: Format List Option
