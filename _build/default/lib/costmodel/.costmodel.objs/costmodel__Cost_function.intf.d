lib/costmodel/cost_function.mli: Memsim Miss_model Pattern
