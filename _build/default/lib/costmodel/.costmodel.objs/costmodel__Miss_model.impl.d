lib/costmodel/miss_model.ml: Array Float Memsim Pattern
