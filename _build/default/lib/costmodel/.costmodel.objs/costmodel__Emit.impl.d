lib/costmodel/emit.ml: Array Float Format Fun Hashtbl List Memsim Pattern Printf Relalg Storage String
