lib/costmodel/model.mli: Memsim Relalg Storage
