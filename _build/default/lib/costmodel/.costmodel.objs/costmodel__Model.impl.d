lib/costmodel/model.ml: Cost_function Emit Format List Memsim Pattern
