lib/costmodel/miss_model.mli: Memsim Pattern
