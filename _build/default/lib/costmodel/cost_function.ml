(* Latency of an access served by level i+1 (a miss at level i):
   l.(0) = register/processing cost, l.(i) = params.levels.(i-1).latency for
   deeper levels, memory last. *)
let latencies (params : Memsim.Params.t) =
  let n = Array.length params.Memsim.Params.levels in
  Array.init (n + 1) (fun i ->
      if i < n then float_of_int params.Memsim.Params.levels.(i).Memsim.Params.latency
      else float_of_int params.Memsim.Params.memory_latency)

(* The paper's l1 is "the time it takes to load and process one value";
   loading costs the L1 latency and processing roughly one more cycle. *)
let process_per_word = 2.0

let cost_of_misses (params : Memsim.Params.t) (m : Miss_model.t) =
  let l = latencies params in
  let faster =
    (m.Miss_model.m0 *. process_per_word *. l.(0))
    +. (m.Miss_model.levels.(0).Miss_model.total *. l.(1))
    +. (m.Miss_model.levels.(1).Miss_model.total *. l.(2))
  in
  let llc = m.Miss_model.levels.(2) in
  let mem_lat = l.(3) in
  (* Equation 5: prefetched fetches overlap with faster-layer work *)
  let t_seq = Float.max 0.0 ((llc.Miss_model.seq *. mem_lat) -. faster) in
  let t_rand = llc.Miss_model.rand *. mem_lat in
  let tlb =
    m.Miss_model.tlb *. float_of_int params.Memsim.Params.tlb.Memsim.Params.latency
  in
  (* Equation 6 *)
  faster +. t_seq +. t_rand +. tlb

let cost_of_misses_additive (params : Memsim.Params.t) (m : Miss_model.t) =
  let l = latencies params in
  (m.Miss_model.m0 *. process_per_word *. l.(0))
  +. (m.Miss_model.levels.(0).Miss_model.total *. l.(1))
  +. (m.Miss_model.levels.(1).Miss_model.total *. l.(2))
  +. (m.Miss_model.levels.(2).Miss_model.total *. l.(3))
  +. (m.Miss_model.tlb
     *. float_of_int params.Memsim.Params.tlb.Memsim.Params.latency)

let rec cost_with_share ~additive ~share params (p : Pattern.t) =
  match p with
  | Pattern.Atom a ->
      let m = Miss_model.atom_misses ~capacity_share:share params a in
      if additive then cost_of_misses_additive params m
      else cost_of_misses params m
  | Pattern.Seq ts ->
      List.fold_left
        (fun acc t -> acc +. cost_with_share ~additive ~share params t)
        0.0 ts
  | Pattern.Par ts ->
      let k = float_of_int (max 1 (List.length ts)) in
      List.fold_left
        (fun acc t ->
          acc +. cost_with_share ~additive ~share:(share /. k) params t)
        0.0 ts

let cost ?(additive = false) params p =
  cost_with_share ~additive ~share:1.0 params p
