(** The prefetching-aware cost function — Equations (5) and (6).

    Sequential (prefetched) LLC misses cost only what is {e not} hidden
    behind the work done in the faster layers: [T_s3 = max(0, Ms3*l4 - sum_i
    Mi*l_{i+1})].  Random misses pay the full memory latency. *)

val cost_of_misses : Memsim.Params.t -> Miss_model.t -> float
(** Total cycles for the given miss counts (Equation 6). *)

val cost_of_misses_additive : Memsim.Params.t -> Miss_model.t -> float
(** The original Generic Cost Model's purely additive cost function
    (constant weights, no prefetch overlap) — kept for the ablation
    experiment comparing the two. *)

val cost : ?additive:bool -> Memsim.Params.t -> Pattern.t -> float
(** Cost of a complete pattern: ⊕ children add up; ⊙ children add up too but
    each sees only its share of the cache capacities (concurrent patterns
    compete for the caches). *)
