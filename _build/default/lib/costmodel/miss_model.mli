(** Cache-miss estimation for atomic access patterns — Equations (1)–(4)
    and the Cardenas distinct-block formula (7) of the paper. *)

type level_misses = {
  total : float;  (** expected misses at this level *)
  seq : float;  (** of which prefetched ("sequential") — meaningful at the LLC *)
  rand : float;
}

type t = {
  m0 : float;  (** processed data words (register-level accesses) *)
  levels : level_misses array;  (** per cache level, fastest first *)
  tlb : float;  (** TLB misses *)
}

val cardenas : r:float -> n:float -> float
(** [cardenas ~r ~n]: expected number of distinct items hit when drawing [r]
    times uniformly from [n] items — Equation (7). *)

val p_access : s:float -> per_line:int -> float
(** Equation (1): probability that a cache line holding [per_line] items is
    touched when each item is read with probability [s]. *)

val p_seq : s:float -> per_line:int -> float
(** Equation (2): probability that a touched line was prefetched (its
    predecessor was touched too). *)

val p_rand : s:float -> per_line:int -> float
(** Equation (3). *)

val atom_misses :
  ?capacity_share:float -> Memsim.Params.t -> Pattern.atom -> t
(** Expected misses of one atom on the given hierarchy.  [capacity_share]
    (default 1.0) scales effective cache capacities, modeling concurrent
    patterns dividing the caches between them. *)
