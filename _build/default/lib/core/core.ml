module Memsim = Memsim
module Storage = Storage
module Relalg = Relalg
module Engines = Engines
module Costmodel = Costmodel
module Layoutopt = Layoutopt
module Workloads = Workloads
module Rng = Mrdb_util.Rng
module Texttab = Mrdb_util.Texttab

module Db = struct
  type t = { cat : Storage.Catalog.t; hier : Memsim.Hierarchy.t option }

  let create ?params ?(simulate = true) () =
    let hier =
      if simulate then Some (Memsim.Hierarchy.create ?params ()) else None
    in
    { cat = Storage.Catalog.create ?hier (); hier }

  let catalog t = t.cat
  let hier t = t.hier

  let create_table t name columns ?layout () =
    let schema = Storage.Schema.make name columns in
    let layout =
      match layout with
      | None -> Storage.Layout.row schema
      | Some groups -> Storage.Layout.of_names schema groups
    in
    ignore (Storage.Catalog.add t.cat schema layout)

  let insert t name values =
    let rel = Storage.Catalog.find t.cat name in
    let tid = Storage.Relation.append rel values in
    Storage.Catalog.notify_insert t.cat name ~tid

  let plan_sql t sql = Relalg.Planner.plan t.cat (Relalg.Sql.parse t.cat sql)

  let exec ?(engine = Engines.Engine.Jit) ?(params = [||]) t sql =
    Engines.Engine.run engine t.cat (plan_sql t sql) ~params

  let exec_measured ?(engine = Engines.Engine.Jit) ?(params = [||]) t sql =
    Engines.Engine.run_measured engine t.cat (plan_sql t sql) ~params

  let explain ?params:_ t sql =
    let plan = plan_sql t sql in
    Format.asprintf "@[<v>plan:@,%a@,%s@]" Relalg.Physical.pp plan
      (Costmodel.Model.explain t.cat plan)

  let set_layout t name groups =
    let rel = Storage.Catalog.find t.cat name in
    let schema = Storage.Relation.schema rel in
    Storage.Catalog.set_layout t.cat name
      (Storage.Layout.of_names schema groups)

  let layout_of t name =
    let rel = Storage.Catalog.find t.cat name in
    Storage.Layout.to_name_groups
      (Storage.Relation.schema rel)
      (Storage.Relation.layout rel)

  let export_csv t table path =
    Storage.Csv.export (Storage.Catalog.find t.cat table) path

  let import_csv t ?table path =
    match table with
    | Some table -> Storage.Csv.import t.cat ~table path
    | None ->
        let name = Filename.remove_extension (Filename.basename path) in
        Storage.Relation.nrows (Storage.Csv.import_new t.cat ~name path)

  let optimize_layout ?(threshold = 0.005) t workload =
    let plans = List.map (fun (sql, freq) -> (plan_sql t sql, freq)) workload in
    let results =
      Layoutopt.Optimizer.optimize
        ~algorithm:(Layoutopt.Optimizer.Bpi threshold)
        t.cat plans
    in
    Layoutopt.Optimizer.apply t.cat results;
    List.map
      (fun (r : Layoutopt.Optimizer.table_result) ->
        (r.Layoutopt.Optimizer.table, layout_of t r.Layoutopt.Optimizer.table))
      results
end

let version = "1.0.0"
