(** MRDB — a memory-resident relational engine combining JiT-compiled query
    execution with partially decomposed (hybrid) storage, after Pirk et al.,
    "CPU and Cache Efficient Management of Memory-Resident Databases"
    (ICDE 2013).

    {!Db} is the high-level entry point; the underlying layers are
    re-exported for direct use:

    - {!Memsim} — the memory-hierarchy simulator (caches, TLB, prefetcher)
    - {!Storage} — values, schemas, layouts, relations, indexes
    - {!Relalg} — expressions, plans, planner, SQL front end
    - {!Engines} — Volcano / bulk / HYRISE-style / JiT execution
    - {!Costmodel} — the extended Generic Cost Model
    - {!Layoutopt} — extended reasonable cuts, OBP and BPi
    - {!Workloads} — the paper's three benchmarks plus the microbenchmark *)

module Memsim = Memsim
module Storage = Storage
module Relalg = Relalg
module Engines = Engines
module Costmodel = Costmodel
module Layoutopt = Layoutopt
module Workloads = Workloads
module Rng = Mrdb_util.Rng
module Texttab = Mrdb_util.Texttab

(** A database instance: catalog + simulated memory hierarchy. *)
module Db : sig
  type t

  val create : ?params:Memsim.Params.t -> ?simulate:bool -> unit -> t
  (** [simulate] (default true) attaches a memory-hierarchy simulator; with
      [false] queries run untraced at full speed. *)

  val catalog : t -> Storage.Catalog.t
  val hier : t -> Memsim.Hierarchy.t option

  val create_table :
    t ->
    string ->
    (string * Storage.Value.ty) list ->
    ?layout:string list list ->
    unit ->
    unit
  (** Create a table; [layout] gives attribute-name groups (default: row
      store). *)

  val insert : t -> string -> Storage.Value.t array -> unit

  val exec :
    ?engine:Engines.Engine.kind ->
    ?params:Storage.Value.t array ->
    t ->
    string ->
    Engines.Runtime.result
  (** Parse, plan and run a SQL statement (default engine: JiT). *)

  val exec_measured :
    ?engine:Engines.Engine.kind ->
    ?params:Storage.Value.t array ->
    t ->
    string ->
    Engines.Runtime.result * Memsim.Stats.t

  val explain : ?params:Storage.Value.t array -> t -> string -> string
  (** The physical plan, its access-pattern program and the model's cost
      estimate. *)

  val set_layout : t -> string -> string list list -> unit
  (** Repartition a table into the given attribute-name groups. *)

  val layout_of : t -> string -> string list list

  val export_csv : t -> string -> string -> unit
  (** [export_csv db table path]. *)

  val import_csv : t -> ?table:string -> string -> int
  (** Load a CSV file: into [table] when given, else into a fresh table
      named after the file (types inferred).  Returns the row count. *)

  val optimize_layout :
    ?threshold:float ->
    t ->
    (string * float) list ->
    (string * string list list) list
  (** [optimize_layout db workload] runs BPi over the (SQL, frequency)
      workload, applies the resulting layouts, and returns them. *)
end

val version : string
