type query = {
  name : string;
  description : string;
  freq : float;
  sql : string;
  make_plan : use_indexes:bool -> Relalg.Physical.t;
  params : Storage.Value.t array;
  modifies : bool;
}

let plans ?(use_indexes = false) queries =
  List.map (fun q -> (q.make_plan ~use_indexes, q.freq)) queries

let read_only queries = List.filter (fun q -> not q.modifies) queries
