lib/workloads/microbench.ml: Array List Mrdb_util Printf Relalg Storage
