lib/workloads/cnet.mli: Memsim Storage Workload
