lib/workloads/sap_sd.mli: Memsim Storage Workload
