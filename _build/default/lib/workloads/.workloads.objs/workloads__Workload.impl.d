lib/workloads/workload.ml: List Relalg Storage
