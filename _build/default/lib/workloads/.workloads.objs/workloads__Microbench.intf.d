lib/workloads/microbench.mli: Memsim Relalg Storage
