lib/workloads/sap_sd.ml: List Mrdb_util Option Printf Relalg Storage String Workload
