lib/workloads/ch.mli: Memsim Relalg Storage Workload
