lib/workloads/workload.mli: Relalg Storage
