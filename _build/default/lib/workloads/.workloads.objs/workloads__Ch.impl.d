lib/workloads/ch.ml: Array Float List Mrdb_util Printf Relalg Storage String Workload
