lib/workloads/cnet.ml: Array List Mrdb_util Printf Relalg Storage String Workload
