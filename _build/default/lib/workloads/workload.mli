(** Common shape of a benchmark workload. *)

type query = {
  name : string;
  description : string;
  freq : float;  (** relative execution frequency in the mix *)
  sql : string;  (** the query text (documentation; plans are prebuilt) *)
  make_plan : use_indexes:bool -> Relalg.Physical.t;
      (** planned against the workload's catalog *)
  params : Storage.Value.t array;
  modifies : bool;
}

val plans :
  ?use_indexes:bool -> query list -> (Relalg.Physical.t * float) list
(** (plan, frequency) pairs for the optimizer / cost model. *)

val read_only : query list -> query list
