module V = Storage.Value
module Schema = Storage.Schema
module Layout = Storage.Layout
module Expr = Relalg.Expr

type t = { cat : Storage.Catalog.t; queries : Workload.query list }

let n_categories = 30
let n_manufacturers = 100
let price_buckets = 100

let schema_of ~n_extra =
  let fixed =
    [
      ("id", V.Int, false);
      ("name", V.Varchar 24, false);
      ("category", V.Varchar 16, false);
      ("manufacturer", V.Varchar 16, false);
      ("price_from", V.Int, false);
      ("price_to", V.Int, false);
    ]
  in
  let extra =
    List.init n_extra (fun i ->
        if i mod 2 = 0 then (Printf.sprintf "ext_%03d" i, V.Int, true)
        else (Printf.sprintf "ext_%03d" i, V.Varchar 12, true))
  in
  Schema.make_nullable "products" (fixed @ extra)

let build ?hier ?(n_products = 20_000) ?(n_extra = 114) ?(avg_filled = 11) ()
    =
  let schema = schema_of ~n_extra in
  let cat = Storage.Catalog.create ?hier () in
  let rel = Storage.Catalog.add cat schema (Layout.row schema) in
  let rng = Mrdb_util.Rng.create 0xC9E7 in
  let fill_prob = float_of_int avg_filled /. float_of_int (max 1 n_extra) in
  Storage.Relation.load rel ~n:n_products (fun ~row ->
      let price = 10 * Mrdb_util.Rng.int_in rng 1 price_buckets in
      Array.init (6 + n_extra) (fun i ->
          match i with
          | 0 -> V.VInt row
          | 1 -> V.VStr (Printf.sprintf "product%06d" row)
          | 2 -> V.VStr (Printf.sprintf "cat%02d" (Mrdb_util.Rng.int rng n_categories))
          | 3 ->
              V.VStr
                (Printf.sprintf "mfg%03d" (Mrdb_util.Rng.int rng n_manufacturers))
          | 4 -> V.VInt price
          | 5 -> V.VInt (price + Mrdb_util.Rng.int_in rng 0 50)
          | i ->
              if Mrdb_util.Rng.bool rng fill_prob then
                if (i - 6) mod 2 = 0 then
                  V.VInt (Mrdb_util.Rng.int rng 100000)
                else
                  V.VStr (Mrdb_util.Rng.string rng ~alphabet:"abcdefgh" ~len:8)
              else V.Null));
  let eq_est sel (e : Expr.t) =
    match e with
    | Expr.Cmp (Expr.Eq, Expr.Col _, _) -> Some sel
    | Expr.Cmp (Expr.Eq, _, _) -> Some sel
    | Expr.And _ -> None
    | _ -> None
  in
  let mk ?(modifies = false) ~freq ?estimate ?n_groups name description sql
      params =
    let logical = Relalg.Sql.parse cat sql in
    {
      Workload.name;
      description;
      freq;
      sql;
      make_plan =
        (fun ~use_indexes ->
          Relalg.Planner.plan ?estimate ?n_groups ~use_indexes cat logical);
      params;
      modifies;
    }
  in
  (* the product-detail page is a primary-key lookup *)
  Storage.Catalog.create_index cat "products" ~name:"products_pk"
    ~kind:Storage.Index.Hash ~attrs:[ "id" ];
  let queries =
    [
      mk "C1" "category overview with product counts" ~freq:1.0
        ~n_groups:(float_of_int n_categories)
        "select category, count(*) cnt from products group by category"
        [||];
      mk "C2" "price ranges within a category" ~freq:1.0
        ~estimate:(eq_est (1.0 /. float_of_int n_categories))
        ~n_groups:(float_of_int price_buckets)
        "select (price_from/10)*10 price, count(*) cnt from products where \
         category = $1 group by price order by price"
        [| V.VStr "cat07" |];
      mk "C3" "product listing for a category and price range" ~freq:100.0
        ~estimate:(fun (e : Expr.t) ->
          match e with
          | Expr.Cmp (Expr.Eq, Expr.Col 2, _) ->
              Some (1.0 /. float_of_int n_categories)
          | Expr.Cmp (Expr.Eq, _, _) -> Some (1.0 /. float_of_int price_buckets)
          | Expr.And _ ->
              Some (1.0 /. float_of_int (n_categories * price_buckets))
          | _ -> None)
        "select id, name from products where category = $1 and \
         (price_from/10)*10 = $2"
        [| V.VStr "cat07"; V.VInt 500 |];
      mk "C4" "product detail page by id" ~freq:10_000.0
        ~estimate:(eq_est (1.0 /. float_of_int n_products))
        "select * from products where id = $1"
        [| V.VInt 4217 |];
    ]
  in
  { cat; queries }

let query t name =
  List.find (fun q -> String.equal q.Workload.name name) t.queries
