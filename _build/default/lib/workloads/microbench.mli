(** The introductory example (Fig. 2, Fig. 3, Table Ib): a 16-attribute
    relation R(A..P) and the query

    {v select sum(B), sum(C), sum(D), sum(E) from R where A < $1 v}

    The paper uses [A = $1] with data chosen to produce a given selectivity;
    we fill A uniformly in [0, 1e6) and use a range predicate so the
    selectivity is exactly [$1 / 1e6] without regenerating data — the access
    pattern (one compared column, four conditionally summed) is identical. *)

val domain : int
(** Size of A's value domain (1e6). *)

val schema : Storage.Schema.t

val pdsm_layout : Storage.Layout.t
(** The paper's hand-optimized partitioning [{A},{B..E},{F..P}]. *)

val build : ?hier:Memsim.Hierarchy.t -> n:int -> unit -> Storage.Catalog.t
(** Catalog containing R with [n] tuples (row layout initially). *)

val plan : Storage.Catalog.t -> sel:float -> Relalg.Physical.t
(** The example query planned with the exact selectivity annotation. *)

val params : sel:float -> Storage.Value.t array

val selective_projection_plan :
  Storage.Catalog.t -> sel:float -> Relalg.Physical.t
(** The selective-projection microbenchmark of Fig. 6: scan A, read B..E on
    match (sum them), on the PDSM layout. *)
