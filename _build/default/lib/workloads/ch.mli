(** The CH-benchmark (Section VI-C): TPC-C's transactional schema merged
    with TPC-H-style analytical queries.

    We build the TPC-C-shaped tables (warehouse, district, customer, orders,
    order_line, item, stock) at a configurable scale with one simplification
    documented in DESIGN.md: order ids are globally unique, so the
    analytical joins use single-attribute keys.  The analytical queries are
    the eight the paper plots in Fig. 11 (CH queries 1, 2, 3, 4, 5, 6, 8,
    10); two transactional statements (new order line, customer lookup)
    complete the mixed workload used for layout optimization. *)

type t = {
  cat : Storage.Catalog.t;
  queries : Workload.query list;  (** analytical, named "CH1".."CH10" *)
  transactions : Workload.query list;  (** "T1" (insert), "T2" (lookup) *)
}

val build : ?hier:Memsim.Hierarchy.t -> ?scale:float -> unit -> t

val tables : string list

val query : t -> string -> Workload.query

val mixed_workload : t -> (Relalg.Physical.t * float) list
(** Analytical queries at frequency 1 plus transactions at frequency 100 —
    the conflicting mix the benchmark is about. *)
