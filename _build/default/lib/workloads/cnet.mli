(** The CNET products benchmark (Section VI-D, Table V, Fig. 12).

    A very wide, sparsely populated product-catalog relation: a handful of
    universal attributes (id, name, category, manufacturer, price) plus many
    optional per-product-type attributes of which the average tuple fills
    only ~11 — the ORM-style schema the paper argues benefits most from
    partial decomposition.  The real dataset has almost 3000 attributes; the
    width here is configurable (default 120) so the simulator runs in
    seconds, and the tuple stays wide and sparse relative to the cache
    line. *)

type t = { cat : Storage.Catalog.t; queries : Workload.query list }

val build :
  ?hier:Memsim.Hierarchy.t ->
  ?n_products:int ->
  ?n_extra:int ->
  ?avg_filled:int ->
  unit ->
  t
(** [n_extra] optional attributes (default 114 → 120 columns total), of
    which [avg_filled] (default 11) are non-null per tuple. *)

val n_categories : int

val query : t -> string -> Workload.query
(** "C1".."C4" with the frequencies of Table V (1, 1, 100, 10000). *)
