(** The SAP Sales & Distribution benchmark (Section VI-B).

    The paper implemented the benchmark "using the reported queries on
    publicly available schema information", filled with random data
    observing uniqueness constraints.  We do the same: six SD tables (ADRC,
    KNA1, VBAK, VBAP, VBEP, MARA) with their characteristic attributes, a
    seeded generator, and the twelve query shapes the evaluation reports —
    including the documented Q1/Q3 (ADRC scans, Table IV), the modifying Q6
    (insert into VBAP), and the identity-selects Q7/Q8 used in the index
    experiment (Fig. 10). *)

type t = { cat : Storage.Catalog.t; queries : Workload.query list }

val build : ?hier:Memsim.Hierarchy.t -> ?scale:float -> unit -> t
(** [scale] multiplies all table cardinalities (default 1.0 ≈ 240k tuples
    total). *)

val tables : string list

val create_indexes : t -> unit
(** Hash indexes on the primary keys of VBAK and VBAP plus the RB-tree on
    VBAP(VBELN) — the configuration of Fig. 10. *)

val query : t -> string -> Workload.query
(** Look up a query by name ("Q1" .. "Q12"). @raise Not_found otherwise. *)

val adrc_queries : t -> Workload.query list
(** Q1 and Q3 — the queries driving the ADRC decomposition of Table IV. *)
