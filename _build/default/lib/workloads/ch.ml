module V = Storage.Value
module Schema = Storage.Schema
module Layout = Storage.Layout
module Expr = Relalg.Expr

type t = {
  cat : Storage.Catalog.t;
  queries : Workload.query list;
  transactions : Workload.query list;
}

let tables =
  [ "warehouse"; "district"; "customer"; "orders"; "order_line"; "item"; "stock" ]

let warehouse_schema =
  Schema.make "warehouse"
    [
      ("w_id", V.Int);
      ("w_name", V.Varchar 10);
      ("w_state", V.Varchar 2);
      ("w_zip", V.Varchar 9);
      ("w_tax", V.Float);
      ("w_ytd", V.Float);
    ]

let district_schema =
  Schema.make "district"
    [
      ("d_id", V.Int);
      ("d_w_id", V.Int);
      ("d_name", V.Varchar 10);
      ("d_tax", V.Float);
      ("d_ytd", V.Float);
      ("d_next_o_id", V.Int);
    ]

let customer_schema =
  Schema.make "customer"
    [
      ("c_id", V.Int);
      ("c_d_id", V.Int);
      ("c_w_id", V.Int);
      ("c_last", V.Varchar 16);
      ("c_first", V.Varchar 16);
      ("c_credit", V.Varchar 2);
      ("c_balance", V.Int);
      ("c_ytd_payment", V.Int);
      ("c_state", V.Varchar 2);
      ("c_since", V.Date);
    ]

let orders_schema =
  Schema.make "orders"
    [
      ("o_id", V.Int);
      ("o_d_id", V.Int);
      ("o_w_id", V.Int);
      ("o_c_id", V.Int);
      ("o_entry_d", V.Date);
      ("o_carrier_id", V.Int);
      ("o_ol_cnt", V.Int);
    ]

let order_line_schema =
  Schema.make "order_line"
    [
      ("ol_o_id", V.Int);
      ("ol_d_id", V.Int);
      ("ol_w_id", V.Int);
      ("ol_number", V.Int);
      ("ol_i_id", V.Int);
      ("ol_supply_w_id", V.Int);
      ("ol_delivery_d", V.Date);
      ("ol_quantity", V.Int);
      ("ol_amount", V.Int);
      ("ol_dist_info", V.Varchar 24);
    ]

let item_schema =
  Schema.make "item"
    [
      ("i_id", V.Int);
      ("i_name", V.Varchar 24);
      ("i_price", V.Int);
      ("i_data", V.Varchar 32);
    ]

let stock_schema =
  Schema.make "stock"
    [
      ("s_i_id", V.Int);
      ("s_w_id", V.Int);
      ("s_quantity", V.Int);
      ("s_ytd", V.Int);
      ("s_order_cnt", V.Int);
      ("s_dist_01", V.Varchar 24);
    ]

let date_span = 3650
let lines_per_order = 5
let states = [| "CA"; "NY"; "TX"; "WA"; "IL"; "MA"; "FL"; "OR" |]

let sizes scale =
  let s n = max 8 (int_of_float (float_of_int n *. scale)) in
  let warehouses = max 2 (int_of_float (4.0 *. scale)) in
  ( warehouses,
    warehouses * 10 (* districts *),
    s 20_000 (* customers *),
    s 40_000 (* orders *),
    s 40_000 * lines_per_order (* order lines *),
    s 10_000 (* items *) )

let build ?hier ?(scale = 1.0) () =
  let cat = Storage.Catalog.create ?hier () in
  let n_w, n_d, n_c, n_o, n_ol, n_i = sizes scale in
  let add schema = Storage.Catalog.add cat schema (Layout.row schema) in
  let warehouse = add warehouse_schema in
  let district = add district_schema in
  let customer = add customer_schema in
  let orders = add orders_schema in
  let order_line = add order_line_schema in
  let item = add item_schema in
  let stock = add stock_schema in
  let rng = Mrdb_util.Rng.create 0xC4_B3 in
  Storage.Relation.load warehouse ~n:n_w (fun ~row ->
      [|
        V.VInt row;
        V.VStr (Printf.sprintf "wh%02d" row);
        V.VStr (Mrdb_util.Rng.choose rng states);
        V.VStr (Printf.sprintf "%09d" (Mrdb_util.Rng.int rng 100000));
        V.VFloat (Mrdb_util.Rng.float rng *. 0.2);
        V.VFloat 0.0;
      |]);
  Storage.Relation.load district ~n:n_d (fun ~row ->
      [|
        V.VInt row;
        V.VInt (row mod n_w);
        V.VStr (Printf.sprintf "d%03d" row);
        V.VFloat (Mrdb_util.Rng.float rng *. 0.2);
        V.VFloat 0.0;
        V.VInt 3001;
      |]);
  Storage.Relation.load customer ~n:n_c (fun ~row ->
      [|
        V.VInt row;
        V.VInt (Mrdb_util.Rng.int rng n_d);
        V.VInt (Mrdb_util.Rng.int rng n_w);
        V.VStr (Printf.sprintf "last%03d" (Mrdb_util.Rng.int rng 1000));
        V.VStr (Printf.sprintf "first%04d" (Mrdb_util.Rng.int rng 10000));
        V.VStr (if Mrdb_util.Rng.bool rng 0.9 then "GC" else "BC");
        V.VInt (Mrdb_util.Rng.int_in rng (-500) 50000);
        V.VInt (Mrdb_util.Rng.int rng 100000);
        V.VStr (Mrdb_util.Rng.choose rng states);
        V.VDate (Mrdb_util.Rng.int rng date_span);
      |]);
  Storage.Relation.load orders ~n:n_o (fun ~row ->
      [|
        V.VInt row;
        V.VInt (Mrdb_util.Rng.int rng n_d);
        V.VInt (Mrdb_util.Rng.int rng n_w);
        V.VInt (Mrdb_util.Rng.int rng n_c);
        V.VDate (Mrdb_util.Rng.int rng date_span);
        V.VInt (Mrdb_util.Rng.int rng 10);
        V.VInt lines_per_order;
      |]);
  Storage.Relation.load order_line ~n:n_ol (fun ~row ->
      [|
        V.VInt (row / lines_per_order);
        V.VInt (Mrdb_util.Rng.int rng n_d);
        V.VInt (Mrdb_util.Rng.int rng n_w);
        V.VInt (row mod lines_per_order);
        V.VInt (Mrdb_util.Rng.int rng n_i);
        V.VInt (Mrdb_util.Rng.int rng n_w);
        V.VDate (Mrdb_util.Rng.int rng date_span);
        V.VInt (Mrdb_util.Rng.int_in rng 1 10);
        V.VInt (Mrdb_util.Rng.int_in rng 1 10000);
        V.VStr (Mrdb_util.Rng.string rng ~alphabet:"abcdef0123456789" ~len:24);
      |]);
  Storage.Relation.load item ~n:n_i (fun ~row ->
      [|
        V.VInt row;
        V.VStr (Printf.sprintf "item%06d" row);
        V.VInt (Mrdb_util.Rng.int_in rng 1 10000);
        V.VStr (Mrdb_util.Rng.string rng ~alphabet:"abcdefgh " ~len:24);
      |]);
  Storage.Relation.load stock ~n:(n_i * min 4 n_w) (fun ~row ->
      [|
        V.VInt (row mod n_i);
        V.VInt (row / n_i);
        V.VInt (Mrdb_util.Rng.int_in rng 0 100);
        V.VInt (Mrdb_util.Rng.int rng 10000);
        V.VInt (Mrdb_util.Rng.int rng 100);
        V.VStr (Mrdb_util.Rng.string rng ~alphabet:"abcdef0123456789" ~len:24);
      |]);
  let mk ?(freq = 1.0) ?(modifies = false) ?estimate ?n_groups name description
      sql params =
    let logical = Relalg.Sql.parse cat sql in
    {
      Workload.name;
      description;
      freq;
      sql;
      make_plan =
        (fun ~use_indexes ->
          Relalg.Planner.plan ?estimate ?n_groups ~use_indexes cat logical);
      params;
      modifies;
    }
  in
  let range_est sel (e : Expr.t) =
    match e with
    | Expr.Cmp ((Expr.Ge | Expr.Gt | Expr.Le | Expr.Lt), _, _) ->
        Some (Float.sqrt sel)
    | Expr.And _ -> Some sel
    | _ -> None
  in
  let eq_est sel (e : Expr.t) =
    match e with Expr.Cmp (Expr.Eq, _, _) -> Some sel | _ -> None
  in
  let queries =
    [
      mk "CH1" "order line quantity/amount summary by line number"
        ~estimate:(range_est 0.7)
        ~n_groups:(float_of_int lines_per_order)
        "select ol_number, sum(ol_quantity) sum_qty, sum(ol_amount) \
         sum_amount, avg(ol_quantity) avg_qty, avg(ol_amount) avg_amount, \
         count(*) count_order from order_line where ol_delivery_d > $1 group \
         by ol_number order by ol_number"
        [| V.VInt (date_span / 4) |];
      mk "CH2" "minimum stock per item" ~n_groups:(float_of_int n_i)
        "select i_id, i_name, min(s_quantity) min_qty from item join stock \
         on i_id = s_i_id group by i_id, i_name"
        [||];
      mk "CH3" "revenue per recent order" ~estimate:(range_est 0.25)
        ~n_groups:(float_of_int n_o *. 0.25)
        "select o_id, sum(ol_amount) revenue from orders join order_line on \
         o_id = ol_o_id where o_entry_d > $1 group by o_id order by revenue \
         desc limit 10"
        [| V.VInt (3 * date_span / 4) |];
      mk "CH4" "order count by line count in a date range"
        ~estimate:(range_est 0.1) ~n_groups:10.0
        "select o_ol_cnt, count(*) order_count from orders where o_entry_d \
         >= $1 and o_entry_d <= $2 group by o_ol_cnt order by o_ol_cnt"
        [| V.VInt 1000; V.VInt 1365 |];
      mk "CH5" "revenue by customer state"
        ~n_groups:(float_of_int (Array.length states))
        "select c_state, sum(ol_amount) revenue from customer join orders on \
         c_id = o_c_id join order_line on o_id = ol_o_id group by c_state \
         order by revenue desc"
        [||];
      mk "CH6" "revenue from mid-size recent orders" ~estimate:(range_est 0.05)
        ~n_groups:1.0
        "select sum(ol_amount) revenue from order_line where ol_delivery_d \
         >= $1 and ol_delivery_d <= $2 and ol_quantity >= $3 and ol_quantity \
         <= $4"
        [| V.VInt 1000; V.VInt 1365; V.VInt 2; V.VInt 7 |];
      mk "CH8" "revenue share of cheap items" ~estimate:(eq_est 0.2)
        ~n_groups:64.0
        "select i_price, sum(ol_amount) revenue from item join order_line on \
         i_id = ol_i_id where i_price <= $1 group by i_price"
        [| V.VInt 2000 |];
      mk "CH10" "top customers by recent revenue" ~estimate:(range_est 0.25)
        ~n_groups:(float_of_int n_c)
        "select o_c_id, sum(ol_amount) revenue from orders join order_line \
         on o_id = ol_o_id where o_entry_d >= $1 group by o_c_id order by \
         revenue desc limit 20"
        [| V.VInt (3 * date_span / 4) |];
    ]
  in
  let transactions =
    [
      mk "T1" "new order line" ~modifies:true ~freq:100.0
        "insert into order_line values ($1,$2,$3,$4,$5,$6,$7,$8,$9,$10)"
        [|
          V.VInt (n_o - 1);
          V.VInt 0;
          V.VInt 0;
          V.VInt 99;
          V.VInt 1;
          V.VInt 0;
          V.VDate 1;
          V.VInt 1;
          V.VInt 42;
          V.VStr "new";
        |];
      mk "T2" "order status: customer lookup" ~freq:100.0
        ~estimate:(eq_est (1.0 /. float_of_int n_c))
        "select * from customer where c_id = $1"
        [| V.VInt 17 |];
    ]
  in
  { cat; queries; transactions }

let query t name =
  List.find
    (fun q -> String.equal q.Workload.name name)
    (t.queries @ t.transactions)

let mixed_workload t =
  Workload.plans ~use_indexes:false (t.queries @ t.transactions)
