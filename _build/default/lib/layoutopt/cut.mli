(** Reasonable and extended reasonable cuts (Section V-A).

    A cut is a set of attributes; applying it to a partitioning splits every
    partition into the attributes inside and outside the cut.  Classic
    reasonable cuts contain all attributes a query accesses; {e extended}
    reasonable cuts are derived from the query's access patterns instead, so
    attributes accessed in different manners (e.g. a scanned predicate
    column vs. conditionally read payload columns) yield separate cuts. *)

type t = int list
(** Sorted, duplicate-free attribute indices. *)

val normalize : int list -> t

val refine : int list list -> t -> int list list
(** [refine partitioning cut] splits each group by cut membership; empty
    groups are dropped and the result is normalized. *)

val classic_of_descs : Costmodel.Emit.access_desc list -> t list
(** One cut per query access set: the union of all attributes the
    descriptors mention (the original OBP/BPi definition). *)

val extended_of_descs : Costmodel.Emit.access_desc list -> t list
(** Extended reasonable cuts: one cut per descriptor (atomic pattern), plus
    the unions of same-kind descriptors, plus the full access set.
    Duplicates removed, deterministic order. *)

val pp : Storage.Schema.t -> Format.formatter -> t -> unit
