module Emit = Costmodel.Emit
module Model = Costmodel.Model
module Layout = Storage.Layout
module Schema = Storage.Schema

type algorithm = Bpi of float | Obp

type table_result = {
  table : string;
  layout : Storage.Layout.t;
  cuts : Cut.t list;
  estimated_cost : float;
  row_cost : float;
  column_cost : float;
  search : Bpi.stats;
}

let descs_for_table ?estimate cat table workload =
  List.concat_map
    (fun (plan, _freq) ->
      let _, descs = Emit.emit ?estimate cat plan in
      List.filter (fun d -> String.equal d.Emit.table table) descs)
    workload

let cuts_for_table ?(extended = true) ?estimate cat table workload =
  (* cuts are per query: each query's descriptors yield its own cut set *)
  let per_query =
    List.concat_map
      (fun (plan, _freq) ->
        let _, descs = Emit.emit ?estimate cat plan in
        let mine = List.filter (fun d -> String.equal d.Emit.table table) descs in
        if mine = [] then []
        else if extended then Cut.extended_of_descs mine
        else Cut.classic_of_descs mine)
      workload
  in
  List.sort_uniq compare per_query

let layout_of_partitioning schema partitioning =
  Layout.of_indices schema partitioning

let workload_cost_with ?estimate ?params ?additive cat table layout workload =
  Model.workload_cost ?estimate ?params ?additive
    ~layouts:[ (table, layout) ]
    cat workload

let optimize_table ?(algorithm = Bpi 0.005) ?(extended = true) ?estimate
    ?params ?additive cat table workload =
  let rel = Storage.Catalog.find cat table in
  let schema = Storage.Relation.schema rel in
  let n_attrs = Schema.arity schema in
  let cuts = cuts_for_table ~extended ?estimate cat table workload in
  let cost partitioning =
    workload_cost_with ?estimate ?params ?additive cat table
      (layout_of_partitioning schema partitioning)
      workload
  in
  let partitioning, estimated_cost, search =
    match algorithm with
    | Bpi threshold -> Bpi.optimize ~cost ~n_attrs ~cuts ~threshold
    | Obp -> Bpi.optimize_exhaustive ~cost ~n_attrs ~cuts
  in
  let layout = layout_of_partitioning schema partitioning in
  let row_cost =
    workload_cost_with ?estimate ?params ?additive cat table
      (Layout.row schema) workload
  in
  let column_cost =
    workload_cost_with ?estimate ?params ?additive cat table
      (Layout.column schema) workload
  in
  { table; layout; cuts; estimated_cost; row_cost; column_cost; search }

let optimize ?algorithm ?extended ?estimate ?params cat workload =
  let tables =
    List.concat_map
      (fun (plan, _) -> List.map (fun d -> d.Emit.table) (snd (Emit.emit cat plan)))
      workload
    |> List.sort_uniq compare
  in
  List.map
    (fun table ->
      optimize_table ?algorithm ?extended ?estimate ?params cat table workload)
    tables

let apply cat results =
  List.iter
    (fun r -> Storage.Catalog.set_layout cat r.table r.layout)
    results

(* silence unused-warning for descs_for_table, which is part of the
   documented API surface used by tests *)
let _ = descs_for_table
