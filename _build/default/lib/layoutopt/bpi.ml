type stats = { cost_evaluations : int; nodes_visited : int }

let base_partitioning n_attrs = [ List.init n_attrs Fun.id ]

let optimize ~cost ~n_attrs ~cuts ~threshold =
  let evals = ref 0 in
  let nodes = ref 0 in
  let cost p =
    incr evals;
    cost p
  in
  let best = ref (base_partitioning n_attrs) in
  let best_cost = ref (cost !best) in
  let rec search current current_cost remaining =
    incr nodes;
    if current_cost < !best_cost then begin
      best := current;
      best_cost := current_cost
    end;
    match remaining with
    | [] -> ()
    | cut :: rest ->
        let refined = Cut.refine current cut in
        if refined = current then search current current_cost rest
        else begin
          let refined_cost = cost refined in
          let improvement = (current_cost -. refined_cost) /. current_cost in
          if improvement > threshold then begin
            (* branch: include the cut ... *)
            search refined refined_cost rest;
            (* ... or exclude it *)
            search current current_cost rest
          end
          else
            (* below threshold: prune the include branch *)
            search current current_cost rest
        end
  in
  search !best !best_cost cuts;
  (!best, !best_cost, { cost_evaluations = !evals; nodes_visited = !nodes })

let optimize_exhaustive ~cost ~n_attrs ~cuts =
  let evals = ref 0 in
  let nodes = ref 0 in
  let cost p =
    incr evals;
    cost p
  in
  let best = ref (base_partitioning n_attrs) in
  let best_cost = ref (cost !best) in
  let rec go current remaining =
    incr nodes;
    let c = cost current in
    if c < !best_cost then begin
      best := current;
      best_cost := c
    end;
    match remaining with
    | [] -> ()
    | cut :: rest ->
        go (Cut.refine current cut) rest;
        go current rest
  in
  go (base_partitioning n_attrs) cuts;
  (!best, !best_cost, { cost_evaluations = !evals; nodes_visited = !nodes })
