lib/layoutopt/optimizer.ml: Bpi Costmodel Cut List Storage String
