lib/layoutopt/bpi.ml: Cut Fun List
