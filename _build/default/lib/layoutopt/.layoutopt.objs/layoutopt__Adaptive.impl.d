lib/layoutopt/adaptive.ml: Costmodel Float Format Hashtbl List Memsim Optimizer Relalg Storage
