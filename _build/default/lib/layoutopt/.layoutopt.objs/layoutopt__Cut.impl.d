lib/layoutopt/cut.ml: Costmodel Format List Storage String
