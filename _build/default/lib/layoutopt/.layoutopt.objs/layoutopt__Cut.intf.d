lib/layoutopt/cut.mli: Costmodel Format Storage
