lib/layoutopt/bpi.mli: Cut
