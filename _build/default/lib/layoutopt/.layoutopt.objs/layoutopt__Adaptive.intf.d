lib/layoutopt/adaptive.mli: Relalg Storage
