lib/layoutopt/optimizer.mli: Bpi Cut Memsim Relalg Storage
