module Emit = Costmodel.Emit

type t = int list

let normalize l = List.sort_uniq compare l

let refine partitioning cut =
  let cut = normalize cut in
  let split group =
    let inside, outside = List.partition (fun a -> List.mem a cut) group in
    List.filter (fun g -> g <> []) [ inside; outside ]
  in
  List.concat_map split partitioning
  |> List.map normalize
  |> List.sort compare

let union_all sets = normalize (List.concat sets)

let classic_of_descs descs =
  match descs with
  | [] -> []
  | _ -> [ union_all (List.map (fun d -> d.Emit.attrs) descs) ]

let kind_rank = function
  | Emit.Seq -> 0
  | Emit.Seq_cond _ -> 1
  | Emit.Rand -> 2

let extended_of_descs descs =
  let per_atom = List.map (fun d -> normalize d.Emit.attrs) descs in
  let by_kind =
    List.map
      (fun k ->
        union_all
          (List.filter_map
             (fun d ->
               if kind_rank d.Emit.kind = k then Some d.Emit.attrs else None)
             descs))
      [ 0; 1; 2 ]
  in
  let full = union_all (List.map (fun d -> d.Emit.attrs) descs) in
  List.filter (fun c -> c <> []) (per_atom @ by_kind @ [ full ])
  |> List.sort_uniq compare

let pp schema ppf cut =
  Format.fprintf ppf "{%s}"
    (String.concat ","
       (List.map
          (fun a -> (Storage.Schema.attr schema a).Storage.Schema.name)
          cut))
