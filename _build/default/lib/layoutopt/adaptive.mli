(** Online / adaptive reorganization of the decomposition — the paper's
    Section VII direction ("online/adaptive reorganization of the
    decomposition strategy").

    The monitor observes executed physical plans, maintains a sliding
    window of the recent workload, and periodically re-runs the BPi
    optimizer over it.  A table is repartitioned only when the model
    predicts that the saving over the amortization horizon exceeds both the
    relative threshold and the estimated cost of the reorganization itself
    (reading and rewriting every tuple). *)

type t

type event = {
  table : string;
  old_layout : Storage.Layout.t;
  new_layout : Storage.Layout.t;
  predicted_saving : float;  (** cycles over the horizon, net of copy cost *)
}

val create :
  ?window:int ->
  ?check_every:int ->
  ?min_benefit:float ->
  ?horizon:float ->
  Storage.Catalog.t ->
  t
(** [window] — how many recent queries form the observed workload (default
    256); [check_every] — evaluate after this many recorded queries (default
    64); [min_benefit] — required relative improvement (default 0.05);
    [horizon] — how many times the observed window is assumed to repeat when
    amortizing the reorganization cost (default 10). *)

val record : t -> Relalg.Physical.t -> event list
(** Observe one executed query; returns the reorganizations applied (empty
    most of the time). *)

val observed : t -> int
(** Queries recorded so far. *)

val reorganizations : t -> event list
(** All events so far, oldest first. *)

val copy_cost : Storage.Catalog.t -> string -> float
(** Model estimate of repartitioning the named table (sequential read plus
    sequential write of all partitions). *)
