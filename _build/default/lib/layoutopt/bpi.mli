(** The BPi branch-and-bound decomposition algorithm (Chu & Ieong, as used
    in Section V-A).

    Starting from the undecomposed relation, cuts are considered one at a
    time; a cut whose estimated improvement exceeds [threshold] (relative to
    the current cost) opens two branches (include / exclude), anything below
    is pruned.  With [threshold = 0] and few cuts this degenerates to the
    exact OBP search; larger thresholds trade optimality for search cost. *)

type stats = { cost_evaluations : int; nodes_visited : int }

val optimize :
  cost:(int list list -> float) ->
  n_attrs:int ->
  cuts:Cut.t list ->
  threshold:float ->
  int list list * float * stats
(** [optimize ~cost ~n_attrs ~cuts ~threshold] returns the best partitioning
    found (as attribute groups), its cost, and search statistics.  [cost]
    evaluates a candidate partitioning (typically through the cost model). *)

val optimize_exhaustive :
  cost:(int list list -> float) ->
  n_attrs:int ->
  cuts:Cut.t list ->
  int list list * float * stats
(** OBP: enumerate every subset of cuts (exponential — keep cuts small). *)
