type t = { mutable next : int }

let page = 4096

let create () = { next = page }

let alloc t size =
  let base = t.next in
  let size = (size + page - 1) / page * page in
  t.next <- t.next + size + page (* one guard page between regions *);
  base
