(** Virtual address space shared by all buffers of one database instance.

    The simulator only needs distinct, stable addresses; no real memory is
    reserved.  Allocations are page-aligned so distinct regions never share a
    cache line or TLB page. *)

type t

val create : unit -> t

val alloc : t -> int -> int
(** [alloc t size] reserves [size] bytes and returns the base address. *)
