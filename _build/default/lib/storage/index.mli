(** Secondary index wrappers binding indexes to relation attributes. *)

type kind = Hash | Rbtree

type t

val kind : t -> kind

val attrs : t -> int list
(** The indexed attribute indices (in key order). *)

val build_hash : Relation.t -> attrs:int list -> t
(** Build a hash index on the given attributes.  The build itself runs
    untraced (index creation is setup work); maintenance via {!insert} is
    traced. *)

val build_rb : Relation.t -> attr:int -> t
(** Ordered index on a single integer-valued attribute. *)

val insert : t -> Relation.t -> tid:int -> unit
(** Index maintenance for a freshly appended tuple (traced — the paper
    measures maintenance cost on the modifying Query 6). *)

val lookup_eq : t -> Relation.t -> Value.t list -> int list
(** Verified equality lookup: candidates from the index are checked against
    the stored attribute values (generating the tuple-reconstruction traffic
    the paper describes), and only true matches returned. *)

val lookup_range : t -> lo:Value.t -> hi:Value.t -> int list
(** Range lookup (Rbtree only). @raise Invalid_argument on hash indexes. *)
