(** An open-addressing hash index stored in simulator-visible memory.

    Entries are (64-bit key, tid) pairs with linear probing; lookups generate
    the random-access traffic the paper attributes to index probes (Fig. 10).
    Keys are derived from values with {!key_of_value}; string keys may
    collide, so callers verify candidates against the relation. *)

type t

val create : Arena.t -> ?hier:Memsim.Hierarchy.t -> ?capacity:int -> unit -> t

val insert : t -> key:int -> tid:int -> unit

val lookup : t -> key:int -> int list
(** All tids whose entry key equals [key] (candidates; may contain hash
    collisions for non-integer keys). *)

val length : t -> int

val key_of_value : Value.t -> int
val key_of_values : Value.t list -> int
