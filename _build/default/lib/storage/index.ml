type kind = Hash | Rbtree

type impl = H of Hash_index.t | R of Rb_index.t

type t = { impl : impl; attrs : int list }

let kind t = match t.impl with H _ -> Hash | R _ -> Rbtree
let attrs t = t.attrs

let untraced rel f =
  match Relation.hier rel with
  | Some h -> Memsim.Hierarchy.without_tracing h f
  | None -> f ()

let key_of rel tid attrs =
  Hash_index.key_of_values (List.map (fun a -> Relation.get rel tid a) attrs)

let build_hash rel ~attrs =
  let idx =
    Hash_index.create (Relation.arena rel)
      ?hier:(Relation.hier rel)
      ~capacity:(max 16 (Relation.nrows rel))
      ()
  in
  untraced rel (fun () ->
      for tid = 0 to Relation.nrows rel - 1 do
        Hash_index.insert idx ~key:(key_of rel tid attrs) ~tid
      done);
  { impl = H idx; attrs }

let build_rb rel ~attr =
  let idx = Rb_index.create (Relation.arena rel) ?hier:(Relation.hier rel) () in
  untraced rel (fun () ->
      for tid = 0 to Relation.nrows rel - 1 do
        Rb_index.insert idx ~key:(Value.to_int (Relation.get rel tid attr)) ~tid
      done);
  { impl = R idx; attrs = [ attr ] }

let insert t rel ~tid =
  match t.impl with
  | H idx -> Hash_index.insert idx ~key:(key_of rel tid t.attrs) ~tid
  | R idx -> (
      match t.attrs with
      | [ a ] -> Rb_index.insert idx ~key:(Value.to_int (Relation.get rel tid a)) ~tid
      | _ -> invalid_arg "Index.insert: rbtree must have one attribute")

let verify rel tid attrs values =
  List.for_all2 (fun a v -> Value.equal (Relation.get rel tid a) v) attrs values

let lookup_eq t rel values =
  match t.impl with
  | H idx ->
      let key = Hash_index.key_of_values values in
      List.filter
        (fun tid -> verify rel tid t.attrs values)
        (Hash_index.lookup idx ~key)
  | R idx -> (
      match values with
      | [ v ] -> Rb_index.lookup idx ~key:(Value.to_int v)
      | _ -> invalid_arg "Index.lookup_eq: rbtree takes one key")

let lookup_range t ~lo ~hi =
  match t.impl with
  | R idx -> Rb_index.range idx ~lo:(Value.to_int lo) ~hi:(Value.to_int hi)
  | H _ -> invalid_arg "Index.lookup_range: hash index has no order"
