(** CSV import and export.

    Minimal RFC-4180-style handling: a header row with column names, comma
    separation, double-quote quoting with [""] escapes, empty fields read as
    NULL.  Import either appends to an existing table (values coerced to the
    schema) or creates a new table with inferred column types. *)

val export : Relation.t -> string -> unit
(** Write the relation (header + all tuples) to the given path. *)

val import : Catalog.t -> table:string -> string -> int
(** Append the file's rows to an existing table.  The header must name the
    table's attributes (any order); missing attributes must be nullable.
    Returns the number of appended rows.  Runs untraced (loading is setup
    work) and maintains indexes.
    @raise Failure on malformed input. *)

val import_new : Catalog.t -> name:string -> string -> Relation.t
(** Create a table named [name] from the file, inferring each column as Int,
    Float or Varchar (nullable when empty fields occur), and load it. *)
