type color = Red | Black

type tree =
  | Leaf
  | Node of { color : color; left : tree; key : int; tid : int; addr : int; right : tree }

type t = {
  arena : Arena.t;
  hier : Memsim.Hierarchy.t option;
  mutable root : tree;
  mutable count : int;
}

(* key + tid + two child pointers + color, rounded up *)
let node_width = 40

let create arena ?hier () = { arena; hier; root = Leaf; count = 0 }

let touch t addr =
  match t.hier with
  | Some h -> Memsim.Hierarchy.read h ~addr ~width:node_width
  | None -> ()

(* Okasaki-style balancing.  Nodes keep their virtual address across path
   copying, so the traffic model sees a stable tree. *)
let balance = function
  | Black, Node { color = Red; left = Node { color = Red; left = a; key = xk; tid = xt; addr = xa; right = b }; key = yk; tid = yt; addr = ya; right = c }, zk, zt, za, d
  | Black, Node { color = Red; left = a; key = xk; tid = xt; addr = xa; right = Node { color = Red; left = b; key = yk; tid = yt; addr = ya; right = c } }, zk, zt, za, d ->
      Node
        {
          color = Red;
          left = Node { color = Black; left = a; key = xk; tid = xt; addr = xa; right = b };
          key = yk;
          tid = yt;
          addr = ya;
          right = Node { color = Black; left = c; key = zk; tid = zt; addr = za; right = d };
        }
  | Black, a, xk, xt, xa, Node { color = Red; left = Node { color = Red; left = b; key = yk; tid = yt; addr = ya; right = c }; key = zk; tid = zt; addr = za; right = d }
  | Black, a, xk, xt, xa, Node { color = Red; left = b; key = yk; tid = yt; addr = ya; right = Node { color = Red; left = c; key = zk; tid = zt; addr = za; right = d } } ->
      Node
        {
          color = Red;
          left = Node { color = Black; left = a; key = xk; tid = xt; addr = xa; right = b };
          key = yk;
          tid = yt;
          addr = ya;
          right = Node { color = Black; left = c; key = zk; tid = zt; addr = za; right = d };
        }
  | color, left, key, tid, addr, right -> Node { color; left; key; tid; addr; right }

let insert t ~key ~tid =
  let addr = Arena.alloc t.arena node_width in
  let rec ins = function
    | Leaf -> Node { color = Red; left = Leaf; key; tid; addr; right = Leaf }
    | Node n ->
        touch t n.addr;
        if key < n.key || (key = n.key && tid < n.tid) then
          balance (n.color, ins n.left, n.key, n.tid, n.addr, n.right)
        else balance (n.color, n.left, n.key, n.tid, n.addr, ins n.right)
  in
  (match ins t.root with
  | Node n -> t.root <- Node { n with color = Black }
  | Leaf -> assert false);
  t.count <- t.count + 1

let range t ~lo ~hi =
  let acc = ref [] in
  let rec go = function
    | Leaf -> ()
    | Node n ->
        touch t n.addr;
        if lo <= n.key then go n.left;
        if lo <= n.key && n.key <= hi then acc := n.tid :: !acc;
        if hi >= n.key then go n.right
  in
  go t.root;
  List.rev !acc

let lookup t ~key = range t ~lo:key ~hi:key

let size t = t.count

let check_invariants t =
  let rec black_height = function
    | Leaf -> Some 1
    | Node n -> (
        let red_red =
          n.color = Red
          && (match n.left with Node l when l.color = Red -> true | _ -> false
             || match n.right with Node r when r.color = Red -> true | _ -> false)
        in
        if red_red then None
        else
          match (black_height n.left, black_height n.right) with
          | Some a, Some b when a = b ->
              Some (a + if n.color = Black then 1 else 0)
          | _ -> None)
  in
  black_height t.root <> None
