(** Typed values and their fixed-width storage encoding.

    All attributes are stored at a fixed width so that the address of tuple
    [tid]'s attribute inside a partition is a simple linear function — the
    property the paper's cost model (and any cache-conscious layout
    reasoning) relies on. *)

type ty =
  | Int  (** 64-bit integer, 8 bytes *)
  | Float  (** IEEE double, 8 bytes *)
  | Bool  (** 1 byte *)
  | Date  (** days since epoch, 8 bytes *)
  | Varchar of int  (** zero-padded fixed-size string, [n] bytes *)

type t =
  | Null
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VDate of int
  | VStr of string

val data_width : ty -> int
(** Storage width of the payload in bytes (excluding any null byte). *)

val type_of : t -> ty option
(** [None] for [Null]; [Varchar] values report their actual length. *)

val is_null : t -> bool

val compare : t -> t -> int
(** Total order: [Null] sorts first; numeric types compare numerically;
    cross-type comparisons fall back to a stable structural order. *)

val equal : t -> t -> bool

val hash : t -> int
(** Hash consistent with {!equal}. *)

val to_int : t -> int
(** Numeric view; raises [Invalid_argument] for non-numeric values. *)

val to_float : t -> float
val to_string_exn : t -> string

val like : t -> pattern:string -> bool
(** SQL [LIKE] with [%] and [_] wildcards over a [VStr]; [Null] never
    matches. *)

val pp : Format.formatter -> t -> unit
val pp_ty : Format.formatter -> ty -> unit
val to_display : t -> string
