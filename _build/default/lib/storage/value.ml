type ty = Int | Float | Bool | Date | Varchar of int

type t =
  | Null
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VDate of int
  | VStr of string

let data_width = function
  | Int | Float | Date -> 8
  | Bool -> 1
  | Varchar n -> n

let type_of = function
  | Null -> None
  | VInt _ -> Some Int
  | VFloat _ -> Some Float
  | VBool _ -> Some Bool
  | VDate _ -> Some Date
  | VStr s -> Some (Varchar (String.length s))

let is_null = function Null -> true | _ -> false

let rank = function
  | Null -> 0
  | VBool _ -> 1
  | VInt _ -> 2
  | VFloat _ -> 3
  | VDate _ -> 4
  | VStr _ -> 5

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | VInt x, VInt y -> Stdlib.compare x y
  | VFloat x, VFloat y -> Stdlib.compare x y
  | VInt x, VFloat y -> Stdlib.compare (float_of_int x) y
  | VFloat x, VInt y -> Stdlib.compare x (float_of_int y)
  | VBool x, VBool y -> Stdlib.compare x y
  | VDate x, VDate y -> Stdlib.compare x y
  (* dates are day numbers: comparable with integer literals/parameters *)
  | VDate x, VInt y | VInt x, VDate y -> Stdlib.compare x y
  | VStr x, VStr y -> Stdlib.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | VInt x -> Hashtbl.hash x
  | VFloat x -> Hashtbl.hash x
  | VBool x -> Hashtbl.hash x
  (* dates hash like their day number: consistent with [compare] treating
     VDate and VInt as the same numeric value *)
  | VDate x -> Hashtbl.hash x
  | VStr s -> Hashtbl.hash s

let to_int = function
  | VInt x -> x
  | VBool b -> if b then 1 else 0
  | VDate d -> d
  | VFloat f -> int_of_float f
  | v ->
      invalid_arg
        (Format.asprintf "Value.to_int: not numeric (%s)"
           (match v with Null -> "null" | VStr _ -> "string" | _ -> "?"))

let to_float = function
  | VFloat f -> f
  | VInt x -> float_of_int x
  | VDate d -> float_of_int d
  | VBool b -> if b then 1.0 else 0.0
  | _ -> invalid_arg "Value.to_float: not numeric"

let to_string_exn = function
  | VStr s -> s
  | _ -> invalid_arg "Value.to_string_exn: not a string"

(* SQL LIKE: '%' matches any run, '_' matches one char. *)
let like v ~pattern =
  match v with
  | VStr s ->
      let np = String.length pattern and ns = String.length s in
      (* memoized recursive matcher *)
      let memo = Hashtbl.create 16 in
      let rec go pi si =
        if pi = np then si = ns
        else
          let key = (pi * (ns + 1)) + si in
          match Hashtbl.find_opt memo key with
          | Some r -> r
          | None ->
              let r =
                match pattern.[pi] with
                | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
                | '_' -> si < ns && go (pi + 1) (si + 1)
                | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
              in
              Hashtbl.add memo key r;
              r
      in
      go 0 0
  | _ -> false

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | VInt x -> Format.pp_print_int ppf x
  | VFloat f -> Format.fprintf ppf "%g" f
  | VBool b -> Format.pp_print_bool ppf b
  | VDate d -> Format.fprintf ppf "date:%d" d
  | VStr s -> Format.fprintf ppf "%S" s

let pp_ty ppf = function
  | Int -> Format.pp_print_string ppf "int"
  | Float -> Format.pp_print_string ppf "float"
  | Bool -> Format.pp_print_string ppf "bool"
  | Date -> Format.pp_print_string ppf "date"
  | Varchar n -> Format.fprintf ppf "varchar(%d)" n

let to_display v = Format.asprintf "%a" pp v
