type t = {
  arena : Arena.t;
  hier : Memsim.Hierarchy.t option;
  mutable buf : Buffer.t;
  mutable slots : int;
  mutable count : int;
}

(* slot layout: 8 bytes key, 8 bytes (tid + 1); 0 in the tid field = empty *)
let entry_width = 16

let create arena ?hier ?(capacity = 64) () =
  let slots = max 16 (capacity * 2) in
  {
    arena;
    hier;
    buf = Buffer.create arena ?hier (slots * entry_width);
    slots;
    count = 0;
  }

let mix_key k =
  (* finalizer of splitmix64, for good slot distribution *)
  let z = Int64.of_int k in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.shift_right_logical (Int64.logxor z (Int64.shift_right_logical z 31)) 2)

let slot_of t key = mix_key key mod t.slots

let rec insert_raw t ~key ~tid =
  if 2 * (t.count + 1) > t.slots then rehash t;
  let rec probe i =
    let off = i * entry_width in
    let occ = Buffer.read_int t.buf (off + 8) in
    if occ = 0 then begin
      Buffer.write_int t.buf off key;
      Buffer.write_int t.buf (off + 8) (tid + 1)
    end
    else probe ((i + 1) mod t.slots)
  in
  probe (slot_of t key);
  t.count <- t.count + 1

and rehash t =
  let old_buf = t.buf and old_slots = t.slots in
  let untraced f =
    match t.hier with
    | Some h -> Memsim.Hierarchy.without_tracing h f
    | None -> f ()
  in
  untraced (fun () ->
      t.slots <- old_slots * 2;
      t.buf <- Buffer.create t.arena ?hier:t.hier (t.slots * entry_width);
      t.count <- 0;
      for i = 0 to old_slots - 1 do
        let off = i * entry_width in
        let occ = Buffer.read_int old_buf (off + 8) in
        if occ <> 0 then
          insert_raw t ~key:(Buffer.read_int old_buf off) ~tid:(occ - 1)
      done)

let insert t ~key ~tid = insert_raw t ~key ~tid

let lookup t ~key =
  let rec probe i acc =
    let off = i * entry_width in
    let occ = Buffer.read_int t.buf (off + 8) in
    if occ = 0 then List.rev acc
    else
      let k = Buffer.read_int t.buf off in
      let acc = if k = key then (occ - 1) :: acc else acc in
      probe ((i + 1) mod t.slots) acc
  in
  probe (slot_of t key) []

let length t = t.count

let fnv s =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    s;
  !h

let key_of_value = function
  | Value.Null -> min_int / 2
  | Value.VInt x -> x
  | Value.VBool b -> if b then 1 else 0
  | Value.VDate d -> d (* same key as VInt: the two compare equal *)
  | Value.VFloat f -> Int64.to_int (Int64.bits_of_float f)
  | Value.VStr s -> fnv s

let key_of_values vs =
  List.fold_left (fun acc v -> (acc * 1000003) lxor key_of_value v) 0 vs
