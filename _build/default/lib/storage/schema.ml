type attr = { name : string; ty : Value.ty; nullable : bool }

type t = { name : string; attrs : attr array }

let make name attrs =
  {
    name;
    attrs =
      Array.of_list
        (List.map (fun (name, ty) -> { name; ty; nullable = false }) attrs);
  }

let make_nullable name attrs =
  {
    name;
    attrs =
      Array.of_list
        (List.map (fun (name, ty, nullable) -> { name; ty; nullable }) attrs);
  }

let arity t = Array.length t.attrs

let attr t i = t.attrs.(i)

let attr_index t name =
  let rec go i =
    if i >= Array.length t.attrs then raise Not_found
    else if String.equal t.attrs.(i).name name then i
    else go (i + 1)
  in
  go 0

let attr_indices t names = List.map (attr_index t) names

let stored_width a = Value.data_width a.ty + if a.nullable then 1 else 0

let row_width t = Array.fold_left (fun acc a -> acc + stored_width a) 0 t.attrs

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s(" t.name;
  Array.iteri
    (fun i (a : attr) ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%s %a%s" a.name Value.pp_ty a.ty
        (if a.nullable then " null" else ""))
    t.attrs;
  Format.fprintf ppf ")@]"
