(** Relation schemas. *)

type attr = { name : string; ty : Value.ty; nullable : bool }

type t = { name : string; attrs : attr array }

val make : string -> (string * Value.ty) list -> t
(** Non-nullable attributes in the given order. *)

val make_nullable : string -> (string * Value.ty * bool) list -> t

val arity : t -> int

val attr : t -> int -> attr

val attr_index : t -> string -> int
(** Index of the named attribute. @raise Not_found otherwise. *)

val attr_indices : t -> string list -> int list

val stored_width : attr -> int
(** Payload width plus one validity byte for nullable attributes. *)

val row_width : t -> int
(** Sum of all stored widths: the tuple width under NSM. *)

val pp : Format.formatter -> t -> unit
