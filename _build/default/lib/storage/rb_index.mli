(** A red-black tree index over integer keys, with duplicates.

    The tree structure lives in OCaml records, but every node carries a
    virtual address, and traversals report one random access per visited
    node to the simulator — modeling the pointer-chasing cost of tree
    indexes without hand-writing a node heap. *)

type t

val create : Arena.t -> ?hier:Memsim.Hierarchy.t -> unit -> t

val insert : t -> key:int -> tid:int -> unit

val lookup : t -> key:int -> int list
(** All tids with exactly this key, in insertion-independent (sorted) order. *)

val range : t -> lo:int -> hi:int -> int list
(** Tids with [lo <= key <= hi]. *)

val size : t -> int

val check_invariants : t -> bool
(** Red-black invariants: no red node has a red child, and every root-leaf
    path has the same black height.  For tests. *)
