lib/storage/arena.ml:
