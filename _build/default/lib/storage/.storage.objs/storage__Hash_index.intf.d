lib/storage/hash_index.mli: Arena Memsim Value
