lib/storage/arena.mli:
