lib/storage/csv.ml: Array Catalog Fun Layout List Memsim Printf Relation Schema Stdlib String Value
