lib/storage/index.mli: Relation Value
