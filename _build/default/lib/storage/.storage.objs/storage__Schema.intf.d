lib/storage/schema.mli: Format Value
