lib/storage/buffer.ml: Arena Bytes Char Int32 Int64 Memsim String Value
