lib/storage/catalog.ml: Arena Hashtbl Index List Memsim Relation Schema
