lib/storage/encoding.mli: Format Schema
