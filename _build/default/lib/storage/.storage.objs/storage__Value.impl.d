lib/storage/value.ml: Format Hashtbl Stdlib String
