lib/storage/csv.mli: Catalog Relation
