lib/storage/catalog.mli: Arena Encoding Index Layout Memsim Relation Schema
