lib/storage/rb_index.mli: Arena Memsim
