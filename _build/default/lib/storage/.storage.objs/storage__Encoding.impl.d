lib/storage/encoding.ml: Format Schema
