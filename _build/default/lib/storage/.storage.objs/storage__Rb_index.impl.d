lib/storage/rb_index.ml: Arena List Memsim
