lib/storage/relation.ml: Arena Array Buffer Encoding Hashtbl Layout List Memsim Schema Value
