lib/storage/hash_index.ml: Arena Buffer Char Int64 List Memsim String Value
