lib/storage/relation.mli: Arena Buffer Encoding Layout Memsim Schema Value
