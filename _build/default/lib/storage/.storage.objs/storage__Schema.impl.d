lib/storage/schema.ml: Array Format List String Value
