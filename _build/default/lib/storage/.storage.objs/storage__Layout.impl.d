lib/storage/layout.ml: Array Format List Printf Schema Stdlib String
