lib/storage/buffer.mli: Arena Memsim Value
