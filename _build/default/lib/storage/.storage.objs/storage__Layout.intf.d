lib/storage/layout.mli: Format Schema
