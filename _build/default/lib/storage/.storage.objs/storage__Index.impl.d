lib/storage/index.ml: Hash_index List Memsim Rb_index Relation Value
