(* Property-based validation of the miss model against the simulator:
   random atomic access patterns are executed literally on the hierarchy and
   the measured LLC misses compared to Equations (1)-(4) and Cardenas (7).
   This is the per-atom analogue of the paper's Fig. 6 validation. *)

module Pattern = Costmodel.Pattern
module Miss = Costmodel.Miss_model

let params = Memsim.Params.nehalem

let llc m = m.Miss.levels.(2)

(* Execute an s_trav_cr literally: traverse n items of width w, reading the
   item with probability s (deterministic per-seed). *)
let drive_s_trav_cr ~n ~w ~s ~seed =
  let hier = Memsim.Hierarchy.create ~params () in
  let rng = Mrdb_util.Rng.create seed in
  for i = 0 to n - 1 do
    if Mrdb_util.Rng.bool rng s then
      Memsim.Hierarchy.read hier ~addr:(i * w) ~width:(min w 8)
  done;
  Memsim.Hierarchy.stats hier

let drive_rr_acc ~n ~w ~r ~seed =
  let hier = Memsim.Hierarchy.create ~params () in
  let rng = Mrdb_util.Rng.create seed in
  for _ = 1 to r do
    let i = Mrdb_util.Rng.int rng n in
    Memsim.Hierarchy.read hier ~addr:(i * w) ~width:(min w 8)
  done;
  Memsim.Hierarchy.stats hier

let within ~tol ~slack predicted measured =
  let p = predicted and m = float_of_int measured in
  Float.abs (p -. m) <= slack +. (tol *. Float.max p m)

let qcheck_s_trav_cr_total =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2_000 40_000 in
      let* w = oneofl [ 8; 16; 32; 64 ] in
      let* s10 = int_range 1 10 in
      let* seed = int_bound 1_000 in
      return (n, w, float_of_int s10 /. 10.0, seed))
  in
  QCheck.Test.make ~count:30
    ~name:"s_trav_cr predicted LLC misses within 35% + slack of simulation"
    (QCheck.make gen)
    (fun (n, w, s, seed) ->
      let st = drive_s_trav_cr ~n ~w ~s ~seed in
      let m =
        Miss.atom_misses params (Pattern.S_trav_cr { n; w; u = min w 8; s })
      in
      let measured =
        st.Memsim.Stats.llc_seq_misses + st.Memsim.Stats.llc_rand_misses
      in
      within ~tol:0.35 ~slack:32.0 (llc m).Miss.total measured)

let qcheck_s_trav_cr_kinds =
  let gen =
    QCheck.Gen.(
      let* n = int_range 5_000 40_000 in
      let* s10 = int_range 1 9 in
      let* seed = int_bound 1_000 in
      return (n, float_of_int s10 /. 10.0, seed))
  in
  QCheck.Test.make ~count:20
    ~name:"s_trav_cr: simulator's seq/rand split follows Eq. 2/3 direction"
    (QCheck.make gen)
    (fun (n, s, seed) ->
      let w = 16 in
      let st = drive_s_trav_cr ~n ~w ~s ~seed in
      let m = Miss.atom_misses params (Pattern.S_trav_cr { n; w; u = 8; s }) in
      let pred_seq_share =
        (llc m).Miss.seq /. Float.max 1e-9 (llc m).Miss.total
      in
      let meas_total =
        st.Memsim.Stats.llc_seq_misses + st.Memsim.Stats.llc_rand_misses
      in
      let meas_seq_share =
        float_of_int st.Memsim.Stats.llc_seq_misses
        /. Float.max 1.0 (float_of_int meas_total)
      in
      (* shares must agree within an absolute 0.35 band (the paper's own
         prediction deviates comparably mid-range) *)
      Float.abs (pred_seq_share -. meas_seq_share) <= 0.35)

let qcheck_rr_acc_unique_lines =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1_000 50_000 in
      let* r = int_range 500 20_000 in
      let* seed = int_bound 1_000 in
      return (n, r, seed))
  in
  QCheck.Test.make ~count:30
    ~name:"rr_acc predicted misses within 35% of simulation (cold caches)"
    (QCheck.make gen)
    (fun (n, r, seed) ->
      let w = 64 in
      let st = drive_rr_acc ~n ~w ~r ~seed in
      let m = Miss.atom_misses params (Pattern.Rr_acc { n; w; u = 8; r }) in
      let measured =
        st.Memsim.Stats.llc_seq_misses + st.Memsim.Stats.llc_rand_misses
      in
      within ~tol:0.35 ~slack:64.0 (llc m).Miss.total measured)

let test_s_trav_exact () =
  (* a plain sequential traversal's miss count is deterministic: one miss
     per 64-byte line *)
  let n = 10_000 and w = 8 in
  let hier = Memsim.Hierarchy.create ~params () in
  for i = 0 to n - 1 do
    Memsim.Hierarchy.read hier ~addr:(i * w) ~width:w
  done;
  let st = Memsim.Hierarchy.stats hier in
  let measured = st.Memsim.Stats.llc_seq_misses + st.Memsim.Stats.llc_rand_misses in
  let m = Miss.atom_misses params (Pattern.S_trav { n; w; u = w }) in
  Alcotest.(check bool)
    (Printf.sprintf "predicted %.0f vs measured %d" (llc m).Miss.total measured)
    true
    (Float.abs ((llc m).Miss.total -. float_of_int measured) <= 3.0)

let test_cardenas_matches_simulation () =
  (* unique lines touched by r random draws: Cardenas vs actual count *)
  let lines = 4096 and r = 6000 in
  let rng = Mrdb_util.Rng.create 7 in
  let seen = Hashtbl.create 1024 in
  for _ = 1 to r do
    Hashtbl.replace seen (Mrdb_util.Rng.int rng lines) ()
  done;
  let actual = float_of_int (Hashtbl.length seen) in
  let predicted =
    Miss.cardenas ~r:(float_of_int r) ~n:(float_of_int lines)
  in
  Alcotest.(check bool)
    (Printf.sprintf "cardenas %.0f vs actual %.0f" predicted actual)
    true
    (Float.abs (predicted -. actual) /. actual < 0.05)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_s_trav_cr_total;
    QCheck_alcotest.to_alcotest qcheck_s_trav_cr_kinds;
    QCheck_alcotest.to_alcotest qcheck_rr_acc_unique_lines;
    Alcotest.test_case "s_trav exact" `Quick test_s_trav_exact;
    Alcotest.test_case "cardenas vs simulation" `Quick
      test_cardenas_matches_simulation;
  ]
