(* Tests for the adaptive (online) layout reorganizer. *)

module V = Storage.Value
module Adaptive = Layoutopt.Adaptive

let point_plan cat n =
  Relalg.Planner.plan
    ~estimate:(fun _ -> Some (1.0 /. float_of_int n))
    cat
    (Relalg.Sql.parse cat "select * from R where A = $1")

let test_no_reorg_before_check_interval () =
  let hier = Memsim.Hierarchy.create () in
  let n = 20_000 in
  let cat = Workloads.Microbench.build ~hier ~n () in
  let m = Adaptive.create ~check_every:50 cat in
  let scan = Workloads.Microbench.plan cat ~sel:0.01 in
  for _ = 1 to 49 do
    Alcotest.(check int) "silent before interval" 0
      (List.length (Adaptive.record m scan))
  done;
  Alcotest.(check int) "observed counter" 49 (Adaptive.observed m)

let test_reorganizes_scan_workload () =
  let hier = Memsim.Hierarchy.create () in
  let n = 50_000 in
  let cat = Workloads.Microbench.build ~hier ~n () in
  let m =
    Adaptive.create ~window:64 ~check_every:16 ~min_benefit:0.01 ~horizon:50.0
      cat
  in
  let scan = Workloads.Microbench.plan cat ~sel:0.01 in
  let events = ref [] in
  for _ = 1 to 64 do
    events := !events @ Adaptive.record m scan
  done;
  Alcotest.(check bool) "reorganized at least once" true (!events <> []);
  let rel = Storage.Catalog.find cat "R" in
  Alcotest.(check bool) "no longer a pure row store" false
    (Storage.Layout.is_row (Storage.Relation.layout rel));
  (* data survives and queries still answer *)
  let r =
    Engines.Engine.run Engines.Engine.Jit cat
      (Workloads.Microbench.plan cat ~sel:0.01)
      ~params:(Workloads.Microbench.params ~sel:0.01)
  in
  Alcotest.(check int) "aggregate row present" 1
    (List.length r.Engines.Runtime.rows)

let test_stable_when_layout_already_good () =
  let hier = Memsim.Hierarchy.create () in
  let n = 50_000 in
  let cat = Workloads.Microbench.build ~hier ~n () in
  (* start from the layout the optimizer would pick *)
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let m =
    Adaptive.create ~window:64 ~check_every:16 ~min_benefit:0.01 cat
  in
  let scan = Workloads.Microbench.plan cat ~sel:0.01 in
  let events = ref [] in
  for _ = 1 to 64 do
    events := !events @ Adaptive.record m scan
  done;
  (* it may refine once, but must not thrash *)
  Alcotest.(check bool) "at most one adjustment" true (List.length !events <= 1);
  let after = List.length (Adaptive.reorganizations m) in
  for _ = 1 to 64 do
    events := !events @ Adaptive.record m scan
  done;
  Alcotest.(check int) "no further churn" after
    (List.length (Adaptive.reorganizations m))

let test_copy_cost_blocks_tiny_benefit () =
  let hier = Memsim.Hierarchy.create () in
  let n = 50_000 in
  let cat = Workloads.Microbench.build ~hier ~n () in
  (* horizon so short that a reorganization can never pay off *)
  let m =
    Adaptive.create ~window:64 ~check_every:16 ~min_benefit:0.01 ~horizon:0.001
      cat
  in
  let scan = Workloads.Microbench.plan cat ~sel:0.01 in
  for _ = 1 to 64 do
    ignore (Adaptive.record m scan)
  done;
  Alcotest.(check int) "copy cost dominates: no reorganization" 0
    (List.length (Adaptive.reorganizations m));
  let rel = Storage.Catalog.find cat "R" in
  Alcotest.(check bool) "layout untouched" true
    (Storage.Layout.is_row (Storage.Relation.layout rel))

let test_copy_cost_positive_and_scales () =
  let hier = Memsim.Hierarchy.create () in
  let small = Workloads.Microbench.build ~hier ~n:1_000 () in
  let big = Workloads.Microbench.build ~hier:(Memsim.Hierarchy.create ()) ~n:10_000 () in
  let c_small = Adaptive.copy_cost small "R" in
  let c_big = Adaptive.copy_cost big "R" in
  Alcotest.(check bool) "positive" true (c_small > 0.0);
  Alcotest.(check bool) "scales with rows" true (c_big > 5.0 *. c_small)

let test_mixed_workload_keeps_useful_row_store () =
  let hier = Memsim.Hierarchy.create () in
  let n = 50_000 in
  let cat = Workloads.Microbench.build ~hier ~n () in
  let m =
    Adaptive.create ~window:64 ~check_every:64 ~min_benefit:0.01 ~horizon:20.0
      cat
  in
  let point = point_plan cat n in
  (* a purely point-lookup workload on an already point-friendly layout *)
  for _ = 1 to 64 do
    ignore (Adaptive.record m point)
  done;
  let rel = Storage.Catalog.find cat "R" in
  (* point lookups read the whole tuple: decomposition cannot pay off *)
  Alcotest.(check bool) "row store kept for point lookups" true
    (Storage.Layout.n_partitions (Storage.Relation.layout rel) <= 2)

let suite =
  [
    Alcotest.test_case "silent before interval" `Quick
      test_no_reorg_before_check_interval;
    Alcotest.test_case "reorganizes scan workload" `Quick
      test_reorganizes_scan_workload;
    Alcotest.test_case "stable when already good" `Quick
      test_stable_when_layout_already_good;
    Alcotest.test_case "copy cost blocks tiny benefit" `Quick
      test_copy_cost_blocks_tiny_benefit;
    Alcotest.test_case "copy cost scaling" `Quick test_copy_cost_positive_and_scales;
    Alcotest.test_case "row store kept for point lookups" `Quick
      test_mixed_workload_keeps_useful_row_store;
  ]
