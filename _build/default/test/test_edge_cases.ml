(* Edge-case battery across the stack: empty inputs, NULL semantics in
   joins/groups, degenerate LIMIT/ORDER BY, Table II emission for joins and
   sorts, vectorized fallbacks, and simulator corner cases. *)

module V = Storage.Value
module Engine = Engines.Engine

let engines = Engine.all

let per_engine name f =
  List.map
    (fun e ->
      Alcotest.test_case
        (Printf.sprintf "%s [%s]" name (Engine.name e))
        `Quick (f e))
    engines

(* ------------------------------------------------------------------ *)
(* Empty inputs                                                        *)
(* ------------------------------------------------------------------ *)

let test_empty_table engine () =
  let cat = Helpers.small_catalog ~n:0 () in
  let r = Helpers.run_sql ~engine cat "select * from t" in
  Alcotest.(check int) "no rows" 0 (List.length r.Engines.Runtime.rows);
  let r = Helpers.run_sql ~engine cat "select count(*) c from t" in
  Helpers.check_rows "count of empty" [ [| V.VInt 0 |] ] r.Engines.Runtime.rows;
  let r =
    Helpers.run_sql ~engine cat "select grp, count(*) c from t group by grp"
  in
  Alcotest.(check int) "no groups" 0 (List.length r.Engines.Runtime.rows)

let test_join_empty_build engine () =
  let cat = Helpers.join_catalog ~n_orders:20 ~n_customers:5 () in
  (* a predicate matching no customers empties the build side *)
  let r =
    Helpers.run_sql ~engine cat
      "select oid from cust join ord on cid = ocid where region = 'nope'"
  in
  Alcotest.(check int) "empty join" 0 (List.length r.Engines.Runtime.rows)

let test_join_empty_probe engine () =
  let cat = Helpers.join_catalog ~n_orders:20 ~n_customers:5 () in
  let r =
    Helpers.run_sql ~engine cat
      "select region from cust join ord on cid = ocid where total = -1"
  in
  Alcotest.(check int) "empty probe side" 0 (List.length r.Engines.Runtime.rows)

let test_limit_zero engine () =
  let cat = Helpers.small_catalog ~n:10 () in
  let r = Helpers.run_sql ~engine cat "select id from t limit 0" in
  Alcotest.(check int) "limit 0" 0 (List.length r.Engines.Runtime.rows)

let test_limit_beyond_rows engine () =
  let cat = Helpers.small_catalog ~n:3 () in
  let r = Helpers.run_sql ~engine cat "select id from t order by id limit 100" in
  Alcotest.(check int) "limit larger than table" 3
    (List.length r.Engines.Runtime.rows)

(* ------------------------------------------------------------------ *)
(* NULL semantics                                                      *)
(* ------------------------------------------------------------------ *)

let nullable_catalog () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let schema =
    Storage.Schema.make_nullable "nt"
      [ ("k", V.Int, false); ("v", V.Int, true); ("g", V.Varchar 4, true) ]
  in
  let rel = Storage.Catalog.add cat schema (Storage.Layout.row schema) in
  List.iteri
    (fun i (v, g) ->
      ignore (Storage.Relation.append rel [| V.VInt i; v; g |]))
    [
      (V.VInt 10, V.VStr "a");
      (V.Null, V.VStr "a");
      (V.VInt 30, V.Null);
      (V.Null, V.Null);
      (V.VInt 50, V.VStr "b");
    ];
  cat

let test_null_aggregates engine () =
  let cat = nullable_catalog () in
  let r =
    Helpers.run_sql ~engine cat
      "select count(*) cs, count(v) cv, sum(v) s, avg(v) a from nt"
  in
  Helpers.check_rows "null-aware aggregates"
    [ [| V.VInt 5; V.VInt 3; V.VInt 90; V.VFloat 30.0 |] ]
    r.Engines.Runtime.rows

let test_null_group_key engine () =
  let cat = nullable_catalog () in
  let r =
    Helpers.run_sql ~engine cat
      "select g, count(*) c from nt group by g order by c desc, g"
  in
  (* NULL forms its own group, like SQL GROUP BY *)
  Alcotest.(check int) "three groups" 3 (List.length r.Engines.Runtime.rows);
  let counts =
    List.map (fun row -> V.to_int row.(1)) r.Engines.Runtime.rows
  in
  Alcotest.(check (list int)) "group sizes" [ 2; 2; 1 ] counts

let test_null_comparison_filters engine () =
  let cat = nullable_catalog () in
  let r = Helpers.run_sql ~engine cat "select k from nt where v > 0" in
  (* NULL > 0 is not true *)
  Alcotest.(check int) "nulls filtered" 3 (List.length r.Engines.Runtime.rows);
  let r = Helpers.run_sql ~engine cat "select k from nt where v is null" in
  Alcotest.(check int) "is null" 2 (List.length r.Engines.Runtime.rows);
  let r = Helpers.run_sql ~engine cat "select k from nt where v is not null" in
  Alcotest.(check int) "is not null" 3 (List.length r.Engines.Runtime.rows)

(* ------------------------------------------------------------------ *)
(* Sorting and expressions                                             *)
(* ------------------------------------------------------------------ *)

let test_multi_key_sort engine () =
  let cat = Helpers.small_catalog ~n:21 () in
  let r =
    Helpers.run_sql ~engine cat
      "select grp, id from t order by grp asc, id desc limit 5"
  in
  Helpers.check_rows "grp asc, id desc"
    [
      [| V.VInt 0; V.VInt 14 |];
      [| V.VInt 0; V.VInt 7 |];
      [| V.VInt 0; V.VInt 0 |];
      [| V.VInt 1; V.VInt 15 |];
      [| V.VInt 1; V.VInt 8 |];
    ]
    r.Engines.Runtime.rows

let test_sort_stability_ties engine () =
  let cat = Helpers.small_catalog ~n:14 () in
  (* all rows in grp order; ties on grp keep a deterministic order because
     every engine sorts the same materialized rows stably *)
  let r = Helpers.run_sql ~engine cat "select grp, id from t order by grp" in
  Alcotest.(check int) "all rows" 14 (List.length r.Engines.Runtime.rows);
  let grps = List.map (fun row -> V.to_int row.(0)) r.Engines.Runtime.rows in
  Alcotest.(check (list int)) "sorted keys" (List.sort compare grps) grps

let test_arithmetic_tower engine () =
  let cat = Helpers.small_catalog ~n:5 () in
  let r =
    Helpers.run_sql ~engine cat
      "select ((id + 1) * 3 - 2) % 7 x, id / 2 h from t order by id"
  in
  let expected =
    List.init 5 (fun id ->
        [| V.VInt ((((id + 1) * 3) - 2) mod 7); V.VInt (id / 2) |])
  in
  Helpers.check_rows "nested arithmetic" expected r.Engines.Runtime.rows

let test_or_predicate engine () =
  let cat = Helpers.small_catalog ~n:50 () in
  let r =
    Helpers.run_sql ~engine cat
      "select count(*) c from t where grp = 0 or grp = 6"
  in
  let expected =
    List.length
      (List.filter (fun i -> i mod 7 = 0 || i mod 7 = 6) (List.init 50 Fun.id))
  in
  Helpers.check_rows "disjunction" [ [| V.VInt expected |] ] r.Engines.Runtime.rows

let test_not_predicate engine () =
  let cat = Helpers.small_catalog ~n:50 () in
  let r =
    Helpers.run_sql ~engine cat "select count(*) c from t where not grp = 0"
  in
  let expected =
    List.length (List.filter (fun i -> i mod 7 <> 0) (List.init 50 Fun.id))
  in
  Helpers.check_rows "negation" [ [| V.VInt expected |] ] r.Engines.Runtime.rows

let test_group_by_string_key engine () =
  let cat = Helpers.small_catalog ~n:100 () in
  let r =
    Helpers.run_sql ~engine cat
      "select name, count(*) c from t where id < 50 group by name order by \
       name limit 3"
  in
  Helpers.check_rows "string group keys"
    [
      [| V.VStr "name000"; V.VInt 1 |];
      [| V.VStr "name001"; V.VInt 1 |];
      [| V.VStr "name002"; V.VInt 1 |];
    ]
    r.Engines.Runtime.rows

(* ------------------------------------------------------------------ *)
(* Table II emission coverage                                          *)
(* ------------------------------------------------------------------ *)

let atoms_of cat sql =
  let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
  let pattern, _ = Costmodel.Emit.emit cat plan in
  Costmodel.Pattern.atoms pattern

let test_emit_join_pattern () =
  let cat = Helpers.join_catalog ~n_orders:300 ~n_customers:40 () in
  let atoms =
    atoms_of cat "select region, total from cust join ord on cid = ocid"
  in
  (* hash build: r_trav of the hashtable; probe: rr_acc with r = probe card *)
  Alcotest.(check bool) "build r_trav present" true
    (List.exists
       (function Costmodel.Pattern.R_trav _ -> true | _ -> false)
       atoms);
  Alcotest.(check bool) "probe rr_acc with probe cardinality" true
    (List.exists
       (function
         | Costmodel.Pattern.Rr_acc { r = 300; _ } -> true
         | _ -> false)
       atoms)

let test_emit_sort_pattern () =
  let cat = Helpers.small_catalog ~n:1000 () in
  let atoms = atoms_of cat "select id from t order by id" in
  (* sort: sequential write of the run plus n log n repetitive accesses *)
  Alcotest.(check bool) "run materialization" true
    (List.exists
       (function Costmodel.Pattern.S_trav { n = 1000; _ } -> true | _ -> false)
       atoms);
  Alcotest.(check bool) "n log n accesses" true
    (List.exists
       (function
         | Costmodel.Pattern.Rr_acc { n = 1000; r; _ } -> r >= 1000 * 9
         | _ -> false)
       atoms)

let test_emit_groupby_pattern () =
  let cat = Helpers.small_catalog ~n:1000 () in
  let plan =
    Relalg.Planner.plan ~n_groups:7.0 cat
      (Relalg.Sql.parse cat "select grp, count(*) c from t group by grp")
  in
  let pattern, _ = Costmodel.Emit.emit cat plan in
  Alcotest.(check bool) "aggregation table rr_acc over groups" true
    (List.exists
       (function
         | Costmodel.Pattern.Rr_acc { n = 7; r = 1000; _ } -> true
         | _ -> false)
       (Costmodel.Pattern.atoms pattern))

let test_emit_cost_monotone_in_rows () =
  let cost n =
    let hier = Memsim.Hierarchy.create () in
    let cat = Storage.Catalog.create ~hier () in
    let rel =
      Storage.Catalog.add cat Helpers.small_schema
        (Storage.Layout.row Helpers.small_schema)
    in
    Helpers.fill_small rel n;
    let plan =
      Relalg.Planner.plan cat (Relalg.Sql.parse cat "select sum(amount) s from t")
    in
    Costmodel.Model.query_cost cat plan
  in
  Alcotest.(check bool) "cost grows with table size" true
    (cost 100 < cost 1000 && cost 1000 < cost 10000)

(* ------------------------------------------------------------------ *)
(* Vectorized engine specifics                                         *)
(* ------------------------------------------------------------------ *)

let test_vectorized_crosses_vector_boundary () =
  (* n not a multiple of the vector size, predicate straddling chunks *)
  let n = (2 * Engines.Vectorized.vector_size) + 37 in
  let cat = Helpers.small_catalog ~n () in
  let r =
    Helpers.run_sql ~engine:Engine.Vectorized cat
      "select count(*) c from t where grp = 3"
  in
  let expected =
    List.length (List.filter (fun i -> i mod 7 = 3) (List.init n Fun.id))
  in
  Helpers.check_rows "partial last vector" [ [| V.VInt expected |] ]
    r.Engines.Runtime.rows

let test_vectorized_join_fallback () =
  (* joins fall back to the bulk engine but must still be correct *)
  let cat = Helpers.join_catalog ~n_orders:60 ~n_customers:10 () in
  let sql =
    "select region, count(*) c from cust join ord on cid = ocid group by \
     region order by region"
  in
  Helpers.check_rows "fallback agrees with jit"
    (Helpers.sorted_rows (Helpers.run_sql ~engine:Engine.Jit cat sql))
    (Helpers.sorted_rows (Helpers.run_sql ~engine:Engine.Vectorized cat sql))

(* ------------------------------------------------------------------ *)
(* Simulator corner cases                                              *)
(* ------------------------------------------------------------------ *)

let test_access_spanning_lines () =
  let h = Memsim.Hierarchy.create () in
  (* a 16-byte access at offset 60 crosses a 64-byte line boundary *)
  Memsim.Hierarchy.read h ~addr:60 ~width:16;
  let s = Memsim.Hierarchy.stats h in
  Alcotest.(check bool) "multiple words touched" true (s.Memsim.Stats.accesses >= 2)

let test_zero_width_region_patterns () =
  (* the miss model must not blow up on degenerate atoms *)
  let params = Memsim.Params.nehalem in
  let m =
    Costmodel.Miss_model.atom_misses params
      (Costmodel.Pattern.S_trav { n = 1; w = 1; u = 1 })
  in
  Alcotest.(check bool) "finite" true
    (Float.is_finite m.Costmodel.Miss_model.m0);
  let c =
    Costmodel.Cost_function.cost params
      (Costmodel.Pattern.rr_acc ~n:1 ~w:1 ~r:1 ())
  in
  Alcotest.(check bool) "positive finite cost" true (c > 0.0 && Float.is_finite c)

let suite =
  per_engine "empty table" test_empty_table
  @ per_engine "join empty build" test_join_empty_build
  @ per_engine "join empty probe" test_join_empty_probe
  @ per_engine "limit 0" test_limit_zero
  @ per_engine "limit beyond rows" test_limit_beyond_rows
  @ per_engine "null aggregates" test_null_aggregates
  @ per_engine "null group key" test_null_group_key
  @ per_engine "null comparisons" test_null_comparison_filters
  @ per_engine "multi-key sort" test_multi_key_sort
  @ per_engine "sort determinism" test_sort_stability_ties
  @ per_engine "arithmetic tower" test_arithmetic_tower
  @ per_engine "or predicate" test_or_predicate
  @ per_engine "not predicate" test_not_predicate
  @ per_engine "string group keys" test_group_by_string_key
  @ [
      Alcotest.test_case "emit join (Table II)" `Quick test_emit_join_pattern;
      Alcotest.test_case "emit sort (Table II)" `Quick test_emit_sort_pattern;
      Alcotest.test_case "emit group-by (Table II)" `Quick
        test_emit_groupby_pattern;
      Alcotest.test_case "emit cost monotone" `Quick test_emit_cost_monotone_in_rows;
      Alcotest.test_case "vectorized chunk boundary" `Quick
        test_vectorized_crosses_vector_boundary;
      Alcotest.test_case "vectorized join fallback" `Quick
        test_vectorized_join_fallback;
      Alcotest.test_case "line-spanning access" `Quick test_access_spanning_lines;
      Alcotest.test_case "degenerate patterns" `Quick
        test_zero_width_region_patterns;
    ]
