(* Tests for Mrdb_util: Rng determinism/uniformity, Texttab rendering. *)

module Rng = Mrdb_util.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Rng.int64 a) (Rng.int64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let a = Rng.int64 parent and b = Rng.int64 child in
  Alcotest.(check bool) "split differs from parent" false (Int64.equal a b)

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_in_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_float_unit_interval () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_int_roughly_uniform () =
  let rng = Rng.create 6 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (abs (c - expected) < expected / 5))
    buckets

let test_permutation_is_permutation () =
  let rng = Rng.create 8 in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "contains 0..99" (Array.init 100 Fun.id) sorted

let test_shuffle_preserves_elements () =
  let rng = Rng.create 9 in
  let a = Array.init 50 (fun i -> i * i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  Array.sort compare b;
  Alcotest.(check (array int)) "same multiset" a b

let test_string_alphabet () =
  let rng = Rng.create 10 in
  let s = Rng.string rng ~alphabet:"xyz" ~len:200 in
  Alcotest.(check int) "length" 200 (String.length s);
  String.iter
    (fun c -> Alcotest.(check bool) "in alphabet" true (String.contains "xyz" c))
    s

let test_zipf_skew () =
  let rng = Rng.create 11 in
  let n = 20 in
  let counts = Array.make n 0 in
  for _ = 1 to 20_000 do
    let v = Rng.zipf rng ~n ~theta:1.0 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most frequent" true
    (counts.(0) > counts.(n - 1) * 3)

let test_zipf_theta_zero_uniform () =
  let rng = Rng.create 12 in
  for _ = 1 to 100 do
    let v = Rng.zipf rng ~n:5 ~theta:0.0 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 5)
  done

let test_texttab_alignment () =
  let t = Mrdb_util.Texttab.create [ "a"; "bbbb" ] in
  Mrdb_util.Texttab.row t [ "xxxxx"; "y" ];
  let rendered = Mrdb_util.Texttab.render t in
  let lines = String.split_on_char '\n' rendered in
  (match lines with
  | header :: sep :: data :: _ ->
      Alcotest.(check int) "aligned widths" (String.length header)
        (String.length sep);
      Alcotest.(check bool) "data row present" true
        (String.length data >= String.length "xxxxx  y")
  | _ -> Alcotest.fail "expected three lines")

let test_texttab_pads_short_rows () =
  let t = Mrdb_util.Texttab.create [ "a"; "b"; "c" ] in
  Mrdb_util.Texttab.row t [ "only" ];
  let rendered = Mrdb_util.Texttab.render t in
  Alcotest.(check bool) "renders without exception" true
    (String.length rendered > 0)

let qcheck_int_in =
  QCheck.Test.make ~count:500 ~name:"rng int_in always within bounds"
    QCheck.(triple small_int small_int small_int)
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Rng.create seed in
      let v = Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_determinism;
    Alcotest.test_case "rng different seeds" `Quick test_different_seeds;
    Alcotest.test_case "rng split" `Quick test_split_independent;
    Alcotest.test_case "rng int bounds" `Quick test_int_bounds;
    Alcotest.test_case "rng int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "rng float range" `Quick test_float_unit_interval;
    Alcotest.test_case "rng uniformity" `Slow test_int_roughly_uniform;
    Alcotest.test_case "rng permutation" `Quick test_permutation_is_permutation;
    Alcotest.test_case "rng shuffle multiset" `Quick test_shuffle_preserves_elements;
    Alcotest.test_case "rng string alphabet" `Quick test_string_alphabet;
    Alcotest.test_case "rng zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "rng zipf uniform" `Quick test_zipf_theta_zero_uniform;
    Alcotest.test_case "texttab alignment" `Quick test_texttab_alignment;
    Alcotest.test_case "texttab padding" `Quick test_texttab_pads_short_rows;
    QCheck_alcotest.to_alcotest qcheck_int_in;
  ]
