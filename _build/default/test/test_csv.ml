(* Tests for CSV import/export. *)

module V = Storage.Value
module Csv = Storage.Csv

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_export_import_roundtrip () =
  let cat = Helpers.small_catalog ~n:50 () in
  let rel = Storage.Catalog.find cat "t" in
  let path = tmp "mrdb_roundtrip.csv" in
  Csv.export rel path;
  (* import into a second, empty catalog with the same schema *)
  let cat2 = Helpers.small_catalog ~n:0 () in
  let n = Csv.import cat2 ~table:"t" path in
  Alcotest.(check int) "row count" 50 n;
  let rel2 = Storage.Catalog.find cat2 "t" in
  Helpers.check_rows "identical tuples"
    (List.init 50 (Storage.Relation.get_tuple rel))
    (List.init 50 (Storage.Relation.get_tuple rel2));
  Sys.remove path

let test_quoting () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let schema =
    Storage.Schema.make "q" [ ("s", V.Varchar 32); ("x", V.Int) ]
  in
  let rel = Storage.Catalog.add cat schema (Storage.Layout.row schema) in
  ignore (Storage.Relation.append rel [| V.VStr "a,b"; V.VInt 1 |]);
  ignore (Storage.Relation.append rel [| V.VStr "say \"hi\""; V.VInt 2 |]);
  let path = tmp "mrdb_quote.csv" in
  Csv.export rel path;
  let cat2 = Storage.Catalog.create ~hier:(Memsim.Hierarchy.create ()) () in
  ignore (Storage.Catalog.add cat2 schema (Storage.Layout.row schema));
  ignore (Csv.import cat2 ~table:"q" path);
  let rel2 = Storage.Catalog.find cat2 "q" in
  Alcotest.(check Helpers.value_testable) "comma survives" (V.VStr "a,b")
    (Storage.Relation.get rel2 0 0);
  Alcotest.(check Helpers.value_testable) "quotes survive" (V.VStr "say \"hi\"")
    (Storage.Relation.get rel2 1 0);
  Sys.remove path

let test_null_roundtrip () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let schema =
    Storage.Schema.make_nullable "nl" [ ("a", V.Int, false); ("b", V.Int, true) ]
  in
  let rel = Storage.Catalog.add cat schema (Storage.Layout.row schema) in
  ignore (Storage.Relation.append rel [| V.VInt 1; V.Null |]);
  ignore (Storage.Relation.append rel [| V.VInt 2; V.VInt 5 |]);
  let path = tmp "mrdb_null.csv" in
  Csv.export rel path;
  let cat2 = Storage.Catalog.create () in
  ignore (Storage.Catalog.add cat2 schema (Storage.Layout.row schema));
  ignore (Csv.import cat2 ~table:"nl" path);
  let rel2 = Storage.Catalog.find cat2 "nl" in
  Alcotest.(check Helpers.value_testable) "null preserved" V.Null
    (Storage.Relation.get rel2 0 1);
  Sys.remove path

let test_import_column_subset_reorder () =
  let cat = Helpers.small_catalog ~n:0 () in
  let path = tmp "mrdb_subset.csv" in
  let oc = open_out path in
  output_string oc "score,id,grp,amount,name\n0.5,7,1,2,hello\n";
  close_out oc;
  ignore (Csv.import cat ~table:"t" path);
  let rel = Storage.Catalog.find cat "t" in
  Alcotest.(check Helpers.row_testable) "reordered columns land correctly"
    [| V.VInt 7; V.VInt 1; V.VInt 2; V.VStr "hello"; V.VFloat 0.5 |]
    (Storage.Relation.get_tuple rel 0);
  Sys.remove path

let test_import_maintains_indexes () =
  let cat = Helpers.small_catalog ~n:10 () in
  Storage.Catalog.create_index cat "t" ~name:"pk" ~kind:Storage.Index.Hash
    ~attrs:[ "id" ];
  let path = tmp "mrdb_idx.csv" in
  let oc = open_out path in
  output_string oc "id,grp,amount,name,score\n500,1,2,x,0.0\n";
  close_out oc;
  ignore (Csv.import cat ~table:"t" path);
  let rel = Storage.Catalog.find cat "t" in
  match Storage.Catalog.find_index cat "t" ~attrs:[ 0 ] with
  | Some idx ->
      Alcotest.(check (list int)) "imported row indexed" [ 10 ]
        (Storage.Index.lookup_eq idx rel [ V.VInt 500 ])
  | None -> Alcotest.fail "index missing"

let test_import_new_inference () =
  let path = tmp "mrdb_infer.csv" in
  let oc = open_out path in
  output_string oc "k,label,ratio,flag,maybe\n1,abc,1.5,true,10\n2,defg,2.5,false,\n";
  close_out oc;
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let rel = Csv.import_new cat ~name:"inferred" path in
  let schema = Storage.Relation.schema rel in
  let attr i = Storage.Schema.attr schema i in
  Alcotest.(check bool) "k is int" true ((attr 0).Storage.Schema.ty = V.Int);
  Alcotest.(check bool) "ratio is float" true
    ((attr 2).Storage.Schema.ty = V.Float);
  Alcotest.(check bool) "flag is bool" true ((attr 3).Storage.Schema.ty = V.Bool);
  Alcotest.(check bool) "maybe nullable" true (attr 4).Storage.Schema.nullable;
  Alcotest.(check int) "rows loaded" 2 (Storage.Relation.nrows rel);
  Alcotest.(check Helpers.value_testable) "null in row 2" V.Null
    (Storage.Relation.get rel 1 4);
  (* and SQL runs over the imported table *)
  let r =
    Helpers.run_sql cat "select sum(k) s from inferred where flag = true"
  in
  Helpers.check_rows "query works" [ [| V.VInt 1 |] ] r.Engines.Runtime.rows;
  Sys.remove path

let test_import_errors () =
  let cat = Helpers.small_catalog ~n:0 () in
  let path = tmp "mrdb_bad.csv" in
  let oc = open_out path in
  output_string oc "id,bogus\n1,2\n";
  close_out oc;
  (match Csv.import cat ~table:"t" path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on unknown column");
  let oc = open_out path in
  output_string oc "id,grp\n1\n";
  close_out oc;
  (match Csv.import cat ~table:"t" path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure on arity mismatch");
  Sys.remove path

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_export_import_roundtrip;
    Alcotest.test_case "quoting" `Quick test_quoting;
    Alcotest.test_case "null roundtrip" `Quick test_null_roundtrip;
    Alcotest.test_case "column subset/reorder" `Quick
      test_import_column_subset_reorder;
    Alcotest.test_case "index maintenance" `Quick test_import_maintains_indexes;
    Alcotest.test_case "type inference" `Quick test_import_new_inference;
    Alcotest.test_case "import errors" `Quick test_import_errors;
  ]
