test/test_update.ml: Alcotest Costmodel Engines Format Helpers List Memsim Printf Relalg Storage
