test/test_storage.ml: Alcotest Fun Helpers List Memsim Mrdb_util Printf QCheck QCheck_alcotest Storage String
