test/test_model_validation.ml: Alcotest Array Costmodel Float Hashtbl Memsim Mrdb_util Printf QCheck QCheck_alcotest
