test/test_relalg.ml: Alcotest Array Format Helpers List Printf Relalg Storage
