test/test_csv.ml: Alcotest Engines Filename Helpers List Memsim Storage Sys
