test/test_robustness.ml: Alcotest Array Costmodel Engines Fun Helpers Layoutopt List Memsim Mrdb_util Printf QCheck QCheck_alcotest Relalg Storage String
