test/test_db.ml: Alcotest Array Core Engines Helpers List Memsim Printf Storage String
