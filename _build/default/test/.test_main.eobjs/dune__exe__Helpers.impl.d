test/helpers.ml: Alcotest Engines List Memsim Printf Relalg Storage
