test/test_edge_cases.ml: Alcotest Array Costmodel Engines Float Fun Helpers List Memsim Printf Relalg Storage
