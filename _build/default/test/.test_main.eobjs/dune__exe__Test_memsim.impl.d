test/test_memsim.ml: Alcotest List Memsim Mrdb_util
