test/test_layoutopt.ml: Alcotest Costmodel Engines Fun Hashtbl Layoutopt List Memsim Mrdb_util QCheck QCheck_alcotest Storage Workloads
