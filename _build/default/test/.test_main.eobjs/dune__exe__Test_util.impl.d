test/test_util.ml: Alcotest Array Fun Int64 Mrdb_util Printf QCheck QCheck_alcotest String
