test/test_engines.ml: Alcotest Array Engines Fun Helpers List Memsim Mrdb_util Option Printf QCheck QCheck_alcotest Relalg Storage
