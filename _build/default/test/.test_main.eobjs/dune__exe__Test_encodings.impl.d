test/test_encodings.ml: Alcotest Array Costmodel Engines Helpers List Memsim Option Printf Relalg Storage
