test/test_c_emitter.ml: Alcotest Engines Helpers Memsim Relalg Storage String Workloads
