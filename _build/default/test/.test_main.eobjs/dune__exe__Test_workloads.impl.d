test/test_workloads.ml: Alcotest Array Engines Helpers List Memsim Printf Storage Workloads
