test/test_adaptive.ml: Alcotest Engines Layoutopt List Memsim Relalg Storage Workloads
