test/test_sampling.ml: Alcotest Float Format Helpers Memsim Option Printf Relalg Storage
