test/test_indexes.ml: Alcotest Array Fun Helpers List Memsim Mrdb_util Option Printf QCheck QCheck_alcotest Storage
