test/test_costmodel.ml: Alcotest Array Costmodel Engines Float Helpers List Memsim Printf QCheck QCheck_alcotest Relalg Storage String Workloads
