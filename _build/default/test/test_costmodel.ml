(* Tests for the cost model: pattern algebra, miss equations, Cardenas,
   prefetch-aware cost function, plan emission, and model-vs-simulator
   agreement on trends. *)

module V = Storage.Value
module Pattern = Costmodel.Pattern
module Miss = Costmodel.Miss_model
module Cf = Costmodel.Cost_function
module Emit = Costmodel.Emit
module Model = Costmodel.Model

let params = Memsim.Params.nehalem

let test_pattern_constructors_flatten () =
  let a = Pattern.s_trav ~n:10 ~w:8 () in
  let p = Pattern.seq [ Pattern.seq [ a; a ]; Pattern.empty; a ] in
  match p with
  | Pattern.Seq ts -> Alcotest.(check int) "flattened" 3 (List.length ts)
  | _ -> Alcotest.fail "expected Seq"

let test_pattern_single_child_collapses () =
  let a = Pattern.s_trav ~n:10 ~w:8 () in
  (match Pattern.seq [ a ] with
  | Pattern.Atom _ -> ()
  | _ -> Alcotest.fail "singleton seq should collapse");
  match Pattern.par [ Pattern.empty; a ] with
  | Pattern.Atom _ -> ()
  | _ -> Alcotest.fail "singleton par should collapse"

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_pattern_pp () =
  let p =
    Pattern.par
      [ Pattern.s_trav ~n:100 ~w:4 (); Pattern.s_trav_cr ~n:100 ~w:16 ~s:0.01 () ]
  in
  let s = Pattern.to_string p in
  Alcotest.(check bool) "mentions s_trav" true (contains_substring s "s_trav");
  Alcotest.(check bool) "mentions s_trav_cr" true (contains_substring s "s_trav_cr")

let test_cardenas_properties () =
  Alcotest.(check (float 1e-6)) "no draws" 0.0 (Miss.cardenas ~r:0.0 ~n:100.0);
  Alcotest.(check (float 1e-2)) "one draw" 1.0 (Miss.cardenas ~r:1.0 ~n:100.0);
  let many = Miss.cardenas ~r:10_000.0 ~n:100.0 in
  Alcotest.(check bool) "approaches n" true (many > 99.9 && many <= 100.0);
  let half = Miss.cardenas ~r:100.0 ~n:100.0 in
  Alcotest.(check bool) "between" true (half > 50.0 && half < 100.0)

let qcheck_cardenas_bounds =
  QCheck.Test.make ~count:500 ~name:"cardenas within [0, min(r,n)]"
    QCheck.(pair (float_bound_exclusive 10000.0) (float_bound_exclusive 10000.0))
    (fun (r, n) ->
      let r = r +. 1.0 and n = n +. 1.0 in
      let v = Miss.cardenas ~r ~n in
      v >= 0.0 && v <= Float.min r n +. 1e-6)

let test_probability_equations () =
  Alcotest.(check (float 1e-9)) "s=0 never accessed" 0.0
    (Miss.p_access ~s:0.0 ~per_line:8);
  Alcotest.(check (float 1e-9)) "s=1 always" 1.0 (Miss.p_access ~s:1.0 ~per_line:8);
  let p = Miss.p_access ~s:0.1 ~per_line:8 in
  Alcotest.(check (float 1e-9)) "eq1" (1.0 -. (0.9 ** 8.0)) p;
  Alcotest.(check (float 1e-9)) "eq2 = p^2" (p *. p) (Miss.p_seq ~s:0.1 ~per_line:8);
  Alcotest.(check (float 1e-9)) "eq3 = p - p^2" (p -. (p *. p))
    (Miss.p_rand ~s:0.1 ~per_line:8)

let qcheck_probabilities_valid =
  QCheck.Test.make ~count:500 ~name:"p_seq + p_rand = p_access, all in [0,1]"
    QCheck.(pair (float_bound_inclusive 1.0) (int_range 1 64))
    (fun (s, per_line) ->
      let p = Miss.p_access ~s ~per_line in
      let ps = Miss.p_seq ~s ~per_line in
      let pr = Miss.p_rand ~s ~per_line in
      p >= 0.0 && p <= 1.0 && ps >= 0.0 && pr >= 0.0
      && Float.abs (ps +. pr -. p) < 1e-9)

let llc m = m.Miss.levels.(2)

let test_s_trav_misses () =
  let m = Miss.atom_misses params (Pattern.S_trav { n = 1000; w = 64; u = 64 }) in
  Alcotest.(check (float 0.5)) "one miss per line" 1000.0 (llc m).Miss.total;
  Alcotest.(check (float 1e-9)) "all sequential" 0.0 (llc m).Miss.rand

let test_s_trav_wide_item_narrow_use () =
  (* 1000 items of 256 bytes, using 8: only one line per item touched *)
  let m = Miss.atom_misses params (Pattern.S_trav { n = 1000; w = 256; u = 8 }) in
  Alcotest.(check (float 0.5)) "one line per item" 1000.0 (llc m).Miss.total

let test_s_trav_cr_monotone_in_s () =
  let total s =
    (llc (Miss.atom_misses params (Pattern.S_trav_cr { n = 10_000; w = 16; u = 16; s })))
      .Miss.total
  in
  Alcotest.(check bool) "monotone" true
    (total 0.01 < total 0.1 && total 0.1 < total 0.5 && total 0.5 <= total 1.0)

let test_s_trav_cr_extremes () =
  let m s =
    llc (Miss.atom_misses params (Pattern.S_trav_cr { n = 6400; w = 64; u = 64; s }))
  in
  Alcotest.(check (float 1e-6)) "s=0: no misses" 0.0 (m 0.0).Miss.total;
  Alcotest.(check (float 0.5)) "s=1: all lines, all sequential" 6400.0
    (m 1.0).Miss.seq;
  Alcotest.(check (float 1e-6)) "s=1: no random misses" 0.0 (m 1.0).Miss.rand

let test_rr_acc_fits_cache () =
  (* small region, many accesses: only compulsory misses *)
  let m =
    Miss.atom_misses params (Pattern.Rr_acc { n = 100; w = 64; u = 64; r = 100_000 })
  in
  Alcotest.(check bool) "bounded by region lines" true ((llc m).Miss.total <= 100.0)

let test_rr_acc_exceeds_cache () =
  (* region 64 MB >> LLC: most accesses miss *)
  let m =
    Miss.atom_misses params
      (Pattern.Rr_acc { n = 1_000_000; w = 64; u = 64; r = 100_000 })
  in
  Alcotest.(check bool) "most accesses miss" true ((llc m).Miss.total > 80_000.0)

let test_capacity_share_increases_misses () =
  let atom = Pattern.Rr_acc { n = 100_000; w = 64; u = 64; r = 200_000 } in
  let full = (llc (Miss.atom_misses ~capacity_share:1.0 params atom)).Miss.total in
  let shared = (llc (Miss.atom_misses ~capacity_share:0.25 params atom)).Miss.total in
  Alcotest.(check bool) "less cache, more misses" true (shared >= full)

let test_cost_function_prefetch_hiding () =
  (* purely sequential pattern: prefetch-aware must not exceed additive *)
  let m = Miss.atom_misses params (Pattern.S_trav { n = 100_000; w = 64; u = 64 }) in
  let aware = Cf.cost_of_misses params m in
  let additive = Cf.cost_of_misses_additive params m in
  Alcotest.(check bool) "aware <= additive" true (aware <= additive)

let test_cost_function_random_equal () =
  (* purely random pattern: the two functions agree *)
  let m =
    Miss.atom_misses params
      (Pattern.Rr_acc { n = 1_000_000; w = 64; u = 64; r = 50_000 })
  in
  Alcotest.(check (float 1.0)) "same on random misses"
    (Cf.cost_of_misses_additive params m)
    (Cf.cost_of_misses params m)

let test_cost_seq_par () =
  let a = Pattern.s_trav ~n:1000 ~w:64 () in
  let single = Cf.cost params a in
  let seq = Cf.cost params (Pattern.seq [ a; a ]) in
  Alcotest.(check (float 0.01)) "seq adds" (2.0 *. single) seq;
  let par = Cf.cost params (Pattern.par [ a; a ]) in
  Alcotest.(check bool) "par at least as expensive as seq" true
    (par >= seq -. 0.01)

let test_emit_example_query_shape () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:10_000 () in
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let plan = Workloads.Microbench.plan cat ~sel:0.01 in
  let pattern, descs = Emit.emit cat plan in
  let atoms = Pattern.atoms pattern in
  let has_s_trav =
    List.exists (function Pattern.S_trav { w = 8; _ } -> true | _ -> false) atoms
  in
  let has_cr =
    List.exists
      (function
        | Pattern.S_trav_cr { w = 32; s; _ } -> Float.abs (s -. 0.01) < 1e-9
        | _ -> false)
      atoms
  in
  Alcotest.(check bool) "s_trav over A partition" true has_s_trav;
  Alcotest.(check bool) "s_trav_cr over B..E partition" true has_cr;
  Alcotest.(check int) "two descriptors" 2 (List.length descs)

let test_emit_layout_sensitivity () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:50_000 () in
  let plan = Workloads.Microbench.plan cat ~sel:0.001 in
  let schema = Workloads.Microbench.schema in
  let cost layout = Model.query_cost ~layouts:[ ("R", layout) ] cat plan in
  let row = cost (Storage.Layout.row schema) in
  let pdsm = cost Workloads.Microbench.pdsm_layout in
  Alcotest.(check bool) "PDSM cheaper than row at low selectivity" true
    (pdsm < row)

let test_emit_index_scan_pattern () =
  let cat = Helpers.small_catalog ~n:1000 () in
  Storage.Catalog.create_index cat "t" ~name:"pk" ~kind:Storage.Index.Hash
    ~attrs:[ "id" ];
  let plan =
    Relalg.Planner.plan cat
      (Relalg.Sql.parse cat "select * from t where id = $1")
  in
  let pattern, descs = Emit.emit cat plan in
  let has_rr =
    List.exists
      (function Pattern.Rr_acc _ -> true | _ -> false)
      (Pattern.atoms pattern)
  in
  Alcotest.(check bool) "index access is rr_acc" true has_rr;
  Alcotest.(check bool) "rand descriptor present" true
    (List.exists (fun d -> d.Emit.kind = Emit.Rand) descs)

let test_emit_insert_pattern () =
  let cat = Helpers.small_catalog ~n:100 () in
  let plan =
    Relalg.Planner.plan cat
      (Relalg.Sql.parse cat "insert into t values (1,2,3,'x',0.5)")
  in
  let pattern, descs = Emit.emit cat plan in
  Alcotest.(check bool) "insert emits point accesses" true
    (List.for_all
       (function Pattern.Rr_acc { r = 1; _ } -> true | _ -> false)
       (Pattern.atoms pattern));
  Alcotest.(check int) "one descriptor over all attrs" 1 (List.length descs)

let test_model_tracks_simulator_trend () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:50_000 () in
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let pairs =
    List.map
      (fun sel ->
        let plan = Workloads.Microbench.plan cat ~sel in
        let est = Model.query_cost cat plan in
        let _, st =
          Engines.Engine.run_measured Engines.Engine.Jit cat plan
            ~params:(Workloads.Microbench.params ~sel)
        in
        (est, float_of_int (Memsim.Stats.total_cycles st)))
      [ 0.001; 0.01; 0.1; 0.5; 1.0 ]
  in
  (* the model must be within 3x of the simulator and strictly increasing
     along with it *)
  List.iter
    (fun (est, act) ->
      Alcotest.(check bool)
        (Printf.sprintf "within 3x (%.0f vs %.0f)" est act)
        true
        (est > act /. 3.0 && est < act *. 3.0))
    pairs;
  let ests = List.map fst pairs and acts = List.map snd pairs in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "model increasing" true (increasing ests);
  Alcotest.(check bool) "simulator increasing" true (increasing acts)

let test_workload_cost_weighted () =
  let cat = Helpers.small_catalog ~n:500 () in
  let plan =
    Relalg.Planner.plan cat (Relalg.Sql.parse cat "select sum(amount) s from t")
  in
  let one = Model.workload_cost cat [ (plan, 1.0) ] in
  let ten = Model.workload_cost cat [ (plan, 10.0) ] in
  Alcotest.(check (float 0.01)) "frequency weights" (10.0 *. one) ten

let test_explain_mentions_pattern () =
  let cat = Helpers.small_catalog ~n:100 () in
  let plan =
    Relalg.Planner.plan cat
      (Relalg.Sql.parse cat "select id from t where grp = $1")
  in
  let s = Model.explain cat plan in
  Alcotest.(check bool) "explain has pattern and cycles" true
    (String.length s > 40)

let suite =
  [
    Alcotest.test_case "pattern flattening" `Quick test_pattern_constructors_flatten;
    Alcotest.test_case "pattern collapse" `Quick test_pattern_single_child_collapses;
    Alcotest.test_case "pattern printing" `Quick test_pattern_pp;
    Alcotest.test_case "cardenas properties" `Quick test_cardenas_properties;
    QCheck_alcotest.to_alcotest qcheck_cardenas_bounds;
    Alcotest.test_case "probability equations" `Quick test_probability_equations;
    QCheck_alcotest.to_alcotest qcheck_probabilities_valid;
    Alcotest.test_case "s_trav misses" `Quick test_s_trav_misses;
    Alcotest.test_case "s_trav wide/narrow" `Quick test_s_trav_wide_item_narrow_use;
    Alcotest.test_case "s_trav_cr monotone" `Quick test_s_trav_cr_monotone_in_s;
    Alcotest.test_case "s_trav_cr extremes" `Quick test_s_trav_cr_extremes;
    Alcotest.test_case "rr_acc cached region" `Quick test_rr_acc_fits_cache;
    Alcotest.test_case "rr_acc large region" `Quick test_rr_acc_exceeds_cache;
    Alcotest.test_case "capacity sharing" `Quick test_capacity_share_increases_misses;
    Alcotest.test_case "eq5 prefetch hiding" `Quick test_cost_function_prefetch_hiding;
    Alcotest.test_case "cost functions agree on random" `Quick
      test_cost_function_random_equal;
    Alcotest.test_case "seq/par composition" `Quick test_cost_seq_par;
    Alcotest.test_case "emit example query" `Quick test_emit_example_query_shape;
    Alcotest.test_case "emit layout sensitivity" `Quick test_emit_layout_sensitivity;
    Alcotest.test_case "emit index scan" `Quick test_emit_index_scan_pattern;
    Alcotest.test_case "emit insert" `Quick test_emit_insert_pattern;
    Alcotest.test_case "model tracks simulator" `Quick
      test_model_tracks_simulator_trend;
    Alcotest.test_case "workload weighting" `Quick test_workload_cost_weighted;
    Alcotest.test_case "explain output" `Quick test_explain_mentions_pattern;
  ]
