(* Tests for the memory-hierarchy simulator: cache behaviour, prefetcher,
   cycle accounting, calibration staircase. *)

module Cache = Memsim.Cache
module Params = Memsim.Params
module Hierarchy = Memsim.Hierarchy
module Prefetcher = Memsim.Prefetcher
module Stats = Memsim.Stats

let tiny_level : Params.level =
  { name = "T"; capacity = 1024; block = 64; latency = 1; assoc = 2 }

let test_cache_hit_after_insert () =
  let c = Cache.create tiny_level in
  Alcotest.(check bool) "cold miss" false (Cache.access c 5);
  Alcotest.(check bool) "warm hit" true (Cache.access c 5)

let test_cache_lru_eviction () =
  (* 1024/64/2 = 8 sets, 2-way; lines 0, 8, 16 map to set 0 *)
  let c = Cache.create tiny_level in
  ignore (Cache.access c 0);
  ignore (Cache.access c 8);
  ignore (Cache.access c 16);
  (* line 0 is LRU and must have been evicted *)
  Alcotest.(check bool) "lru gone" false (Cache.mem c 0);
  Alcotest.(check bool) "recent kept" true (Cache.mem c 16)

let test_cache_lru_refresh () =
  let c = Cache.create tiny_level in
  ignore (Cache.access c 0);
  ignore (Cache.access c 8);
  ignore (Cache.access c 0);
  (* refresh 0 *)
  ignore (Cache.access c 16);
  (* now 8 is LRU *)
  Alcotest.(check bool) "refreshed survives" true (Cache.mem c 0);
  Alcotest.(check bool) "stale evicted" false (Cache.mem c 8)

let test_cache_insert_no_demand () =
  let c = Cache.create tiny_level in
  Cache.insert c 3;
  Alcotest.(check bool) "prefetch-inserted line hits" true (Cache.access c 3)

let test_cache_clear () =
  let c = Cache.create tiny_level in
  ignore (Cache.access c 1);
  Cache.clear c;
  Alcotest.(check bool) "cleared" false (Cache.mem c 1)

let test_prefetcher_adjacent () =
  let p = Prefetcher.create ~streams:4 in
  Alcotest.(check (option int)) "first access: nothing" None (Prefetcher.observe p 10);
  Alcotest.(check (option int)) "adjacent: prefetch next" (Some 12)
    (Prefetcher.observe p 11)

let test_prefetcher_stride () =
  let p = Prefetcher.create ~streams:4 in
  ignore (Prefetcher.observe p 100);
  Alcotest.(check (option int)) "stride not yet confirmed" None
    (Prefetcher.observe p 104);
  Alcotest.(check (option int)) "confirmed stride 4" (Some 112)
    (Prefetcher.observe p 108)

let test_prefetcher_same_line_quiet () =
  let p = Prefetcher.create ~streams:4 in
  ignore (Prefetcher.observe p 50);
  Alcotest.(check (option int)) "repeat access silent" None
    (Prefetcher.observe p 50)

let test_prefetcher_multiple_streams () =
  let p = Prefetcher.create ~streams:4 in
  ignore (Prefetcher.observe p 1000);
  ignore (Prefetcher.observe p 5000);
  (* both streams stay tracked *)
  Alcotest.(check (option int)) "stream A advances" (Some 1002)
    (Prefetcher.observe p 1001);
  Alcotest.(check (option int)) "stream B advances" (Some 5002)
    (Prefetcher.observe p 5001)

let test_hierarchy_l1_hit_cost () =
  let h = Hierarchy.create () in
  Hierarchy.read h ~addr:64 ~width:8;
  let cold = (Hierarchy.stats h).Stats.mem_cycles in
  Hierarchy.reset_stats h;
  Hierarchy.read h ~addr:64 ~width:8;
  let warm = (Hierarchy.stats h).Stats.mem_cycles in
  Alcotest.(check int) "L1 hit costs exactly l1" 1 warm;
  Alcotest.(check bool) "cold access costs more" true (cold > warm)

let test_hierarchy_word_split () =
  let h = Hierarchy.create () in
  Hierarchy.read h ~addr:0 ~width:32;
  Alcotest.(check int) "32 bytes = 4 word accesses" 4
    (Hierarchy.stats h).Stats.accesses

let test_hierarchy_write_counted () =
  let h = Hierarchy.create () in
  Hierarchy.write h ~addr:0 ~width:8;
  Hierarchy.read h ~addr:8 ~width:8;
  let s = Hierarchy.stats h in
  Alcotest.(check int) "one write" 1 s.Stats.writes;
  Alcotest.(check int) "one read" 1 s.Stats.reads

let test_hierarchy_tracing_toggle () =
  let h = Hierarchy.create () in
  Hierarchy.set_enabled h false;
  Hierarchy.read h ~addr:0 ~width:8;
  Hierarchy.add_cpu h 100;
  Alcotest.(check int) "nothing recorded" 0
    (Stats.total_cycles (Hierarchy.stats h));
  Hierarchy.set_enabled h true;
  Hierarchy.read h ~addr:0 ~width:8;
  Alcotest.(check bool) "recording resumed" true
    ((Hierarchy.stats h).Stats.accesses = 1)

let test_hierarchy_without_tracing_restores () =
  let h = Hierarchy.create () in
  Memsim.Hierarchy.without_tracing h (fun () ->
      Hierarchy.read h ~addr:0 ~width:8);
  Alcotest.(check bool) "re-enabled after thunk" true (Hierarchy.enabled h);
  Alcotest.(check int) "no accesses recorded" 0 (Hierarchy.stats h).Stats.accesses

let test_sequential_scan_prefetched () =
  let h = Hierarchy.create () in
  (* scan 1 MB sequentially: after warm-up, LLC misses should be mostly
     prefetched (sequential) *)
  for i = 0 to (1 lsl 20) / 8 do
    Hierarchy.read h ~addr:(i * 8) ~width:8
  done;
  let s = Hierarchy.stats h in
  Alcotest.(check bool) "mostly sequential misses" true
    (s.Stats.llc_seq_misses > 10 * max 1 s.Stats.llc_rand_misses)

let test_random_access_not_prefetched () =
  let h = Hierarchy.create () in
  let rng = Mrdb_util.Rng.create 99 in
  let region = 4 * 1024 * 1024 in
  for _ = 0 to 20_000 do
    Hierarchy.read h ~addr:(Mrdb_util.Rng.int rng (region / 8) * 8) ~width:8
  done;
  let s = Hierarchy.stats h in
  Alcotest.(check bool) "mostly random misses" true
    (s.Stats.llc_rand_misses > 5 * max 1 s.Stats.llc_seq_misses)

let test_stats_diff_and_add () =
  let a = Stats.create () in
  a.Stats.accesses <- 10;
  a.Stats.mem_cycles <- 100;
  let b = Stats.copy a in
  b.Stats.accesses <- 25;
  b.Stats.mem_cycles <- 260;
  let d = Stats.diff b a in
  Alcotest.(check int) "diff accesses" 15 d.Stats.accesses;
  Alcotest.(check int) "diff cycles" 160 d.Stats.mem_cycles;
  Stats.add a d;
  Alcotest.(check int) "add restores" 25 a.Stats.accesses

let test_calibrator_staircase () =
  let pts = Memsim.Calibrator.run_random ~accesses:50_000 Params.nehalem in
  let value bytes =
    match
      List.find_opt (fun p -> p.Memsim.Calibrator.region_bytes = bytes) pts
    with
    | Some p -> p.Memsim.Calibrator.cycles_per_access
    | None -> Alcotest.fail "missing calibration point"
  in
  let l1 = value 16384 and l2 = value 131072 and l3 = value 4194304 in
  let mem = value (32 * 1024 * 1024) in
  Alcotest.(check bool) "L1 plateau ~1" true (l1 < 1.5);
  Alcotest.(check bool) "L2 plateau above L1" true (l2 > l1 +. 1.0);
  Alcotest.(check bool) "L3 plateau above L2" true (l3 > l2 +. 2.0);
  Alcotest.(check bool) "memory above L3" true (mem > l3 +. 2.0)

let test_calibrator_sequential_flat () =
  let pts = Memsim.Calibrator.run_sequential ~accesses:50_000 Params.nehalem in
  let last = List.nth pts (List.length pts - 1) in
  Alcotest.(check bool) "prefetching keeps sequential cheap" true
    (last.Memsim.Calibrator.cycles_per_access < 8.0)

let test_fit_latencies_recovers () =
  let pts = Memsim.Calibrator.run_random ~accesses:100_000 Params.nehalem in
  let fitted = Memsim.Calibrator.fit_latencies Params.nehalem pts in
  (match List.assoc_opt "L1" fitted with
  | Some l -> Alcotest.(check int) "L1 latency" 1 l
  | None -> Alcotest.fail "no L1 fit");
  match List.assoc_opt "L3" fitted with
  | Some l -> Alcotest.(check bool) "L3 latency near 8" true (abs (l - 8) <= 2)
  | None -> Alcotest.fail "no L3 fit"

let suite =
  [
    Alcotest.test_case "cache hit after insert" `Quick test_cache_hit_after_insert;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache LRU refresh" `Quick test_cache_lru_refresh;
    Alcotest.test_case "cache prefetch insert" `Quick test_cache_insert_no_demand;
    Alcotest.test_case "cache clear" `Quick test_cache_clear;
    Alcotest.test_case "prefetcher adjacent line" `Quick test_prefetcher_adjacent;
    Alcotest.test_case "prefetcher stride detection" `Quick test_prefetcher_stride;
    Alcotest.test_case "prefetcher same line" `Quick test_prefetcher_same_line_quiet;
    Alcotest.test_case "prefetcher streams" `Quick test_prefetcher_multiple_streams;
    Alcotest.test_case "hierarchy L1 hit cost" `Quick test_hierarchy_l1_hit_cost;
    Alcotest.test_case "hierarchy word split" `Quick test_hierarchy_word_split;
    Alcotest.test_case "hierarchy write counted" `Quick test_hierarchy_write_counted;
    Alcotest.test_case "hierarchy tracing toggle" `Quick test_hierarchy_tracing_toggle;
    Alcotest.test_case "hierarchy without_tracing" `Quick test_hierarchy_without_tracing_restores;
    Alcotest.test_case "sequential scan prefetched" `Quick test_sequential_scan_prefetched;
    Alcotest.test_case "random access not prefetched" `Quick test_random_access_not_prefetched;
    Alcotest.test_case "stats diff/add" `Quick test_stats_diff_and_add;
    Alcotest.test_case "calibrator staircase" `Slow test_calibrator_staircase;
    Alcotest.test_case "calibrator sequential flat" `Slow test_calibrator_sequential_flat;
    Alcotest.test_case "calibrator fit" `Slow test_fit_latencies_recovers;
  ]
