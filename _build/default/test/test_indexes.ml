(* Tests for hash and red-black-tree indexes. *)

module V = Storage.Value
module Hash_index = Storage.Hash_index
module Rb_index = Storage.Rb_index
module Index = Storage.Index

let test_hash_basic () =
  let arena = Storage.Arena.create () in
  let idx = Hash_index.create arena () in
  Hash_index.insert idx ~key:10 ~tid:1;
  Hash_index.insert idx ~key:20 ~tid:2;
  Alcotest.(check (list int)) "hit" [ 1 ] (Hash_index.lookup idx ~key:10);
  Alcotest.(check (list int)) "miss" [] (Hash_index.lookup idx ~key:30)

let test_hash_duplicates () =
  let arena = Storage.Arena.create () in
  let idx = Hash_index.create arena () in
  Hash_index.insert idx ~key:5 ~tid:1;
  Hash_index.insert idx ~key:5 ~tid:2;
  Hash_index.insert idx ~key:5 ~tid:3;
  Alcotest.(check (list int)) "all dups" [ 1; 2; 3 ]
    (List.sort compare (Hash_index.lookup idx ~key:5))

let test_hash_grows () =
  let arena = Storage.Arena.create () in
  let idx = Hash_index.create arena ~capacity:4 () in
  for i = 0 to 999 do
    Hash_index.insert idx ~key:i ~tid:(i * 2)
  done;
  Alcotest.(check int) "count" 1000 (Hash_index.length idx);
  for i = 0 to 999 do
    Alcotest.(check (list int))
      (Printf.sprintf "key %d survives rehash" i)
      [ i * 2 ]
      (Hash_index.lookup idx ~key:i)
  done

let test_hash_negative_keys () =
  let arena = Storage.Arena.create () in
  let idx = Hash_index.create arena () in
  Hash_index.insert idx ~key:(-42) ~tid:7;
  Alcotest.(check (list int)) "negative key" [ 7 ]
    (Hash_index.lookup idx ~key:(-42))

let test_key_of_value () =
  Alcotest.(check int) "int key is identity" 99
    (Hash_index.key_of_value (V.VInt 99));
  Alcotest.(check bool) "string keys consistent" true
    (Hash_index.key_of_value (V.VStr "x")
    = Hash_index.key_of_value (V.VStr "x"));
  Alcotest.(check bool) "different strings differ" true
    (Hash_index.key_of_value (V.VStr "x")
    <> Hash_index.key_of_value (V.VStr "y"))

let test_rb_sorted_range () =
  let arena = Storage.Arena.create () in
  let idx = Rb_index.create arena () in
  let rng = Mrdb_util.Rng.create 1 in
  let keys = Array.init 500 (fun i -> (i, Mrdb_util.Rng.int rng 1000)) in
  Array.iter (fun (tid, key) -> Rb_index.insert idx ~key ~tid) keys;
  Alcotest.(check int) "size" 500 (Rb_index.size idx);
  let expected =
    Array.to_list keys
    |> List.filter (fun (_, k) -> k >= 200 && k <= 300)
    |> List.map fst |> List.sort compare
  in
  let got = List.sort compare (Rb_index.range idx ~lo:200 ~hi:300) in
  Alcotest.(check (list int)) "range contents" expected got

let test_rb_lookup_duplicates () =
  let arena = Storage.Arena.create () in
  let idx = Rb_index.create arena () in
  Rb_index.insert idx ~key:7 ~tid:1;
  Rb_index.insert idx ~key:7 ~tid:2;
  Rb_index.insert idx ~key:8 ~tid:3;
  Alcotest.(check (list int)) "both dups" [ 1; 2 ]
    (List.sort compare (Rb_index.lookup idx ~key:7))

let test_rb_invariants_random () =
  let arena = Storage.Arena.create () in
  let idx = Rb_index.create arena () in
  let rng = Mrdb_util.Rng.create 2 in
  for tid = 0 to 2000 do
    Rb_index.insert idx ~key:(Mrdb_util.Rng.int rng 100) ~tid;
    if tid mod 500 = 0 then
      Alcotest.(check bool) "red-black invariants hold" true
        (Rb_index.check_invariants idx)
  done;
  Alcotest.(check bool) "final invariants" true (Rb_index.check_invariants idx)

let test_rb_invariants_sorted_inserts () =
  let arena = Storage.Arena.create () in
  let idx = Rb_index.create arena () in
  for tid = 0 to 1000 do
    Rb_index.insert idx ~key:tid ~tid
  done;
  Alcotest.(check bool) "invariants under sorted inserts" true
    (Rb_index.check_invariants idx);
  Alcotest.(check (list int)) "full range ordered"
    (List.init 1001 Fun.id)
    (Rb_index.range idx ~lo:0 ~hi:2000)

let qcheck_rb_range =
  QCheck.Test.make ~count:200 ~name:"rb range equals filtered list"
    QCheck.(small_list (pair small_int small_int))
    (fun pairs ->
      let arena = Storage.Arena.create () in
      let idx = Rb_index.create arena () in
      List.iteri (fun tid (k, _) -> Rb_index.insert idx ~key:k ~tid) pairs;
      let lo = 10 and hi = 60 in
      let expected =
        List.mapi (fun tid (k, _) -> (tid, k)) pairs
        |> List.filter (fun (_, k) -> k >= lo && k <= hi)
        |> List.map fst |> List.sort compare
      in
      List.sort compare (Rb_index.range idx ~lo ~hi) = expected
      && Rb_index.check_invariants idx)

let test_index_verified_lookup () =
  let cat = Helpers.small_catalog ~n:300 () in
  let rel = Storage.Catalog.find cat "t" in
  (* non-unique string attribute: hash keys may collide, verify filters *)
  let idx = Index.build_hash rel ~attrs:[ 3 ] in
  let hits = Index.lookup_eq idx rel [ V.VStr "name007" ] in
  let expected =
    List.filter
      (fun tid -> V.equal (Storage.Relation.get rel tid 3) (V.VStr "name007"))
      (List.init 300 Fun.id)
  in
  Alcotest.(check (list int)) "verified hits" expected (List.sort compare hits)

let test_index_maintenance () =
  let cat = Helpers.small_catalog ~n:50 () in
  Storage.Catalog.create_index cat "t" ~name:"pk" ~kind:Index.Hash
    ~attrs:[ "id" ];
  let rel = Storage.Catalog.find cat "t" in
  let tid =
    Storage.Relation.append rel
      [| V.VInt 777; V.VInt 0; V.VInt 0; V.VStr "new"; V.VFloat 0.0 |]
  in
  Storage.Catalog.notify_insert cat "t" ~tid;
  match Storage.Catalog.find_index cat "t" ~attrs:[ 0 ] with
  | Some idx ->
      Alcotest.(check (list int)) "fresh tuple indexed" [ tid ]
        (Index.lookup_eq idx rel [ V.VInt 777 ])
  | None -> Alcotest.fail "index not found"

let test_index_survives_repartition () =
  let cat = Helpers.small_catalog ~n:100 () in
  Storage.Catalog.create_index cat "t" ~name:"pk" ~kind:Index.Hash
    ~attrs:[ "id" ];
  Storage.Catalog.set_layout cat "t"
    (Storage.Layout.column Helpers.small_schema);
  let rel = Storage.Catalog.find cat "t" in
  match Storage.Catalog.find_index cat "t" ~attrs:[ 0 ] with
  | Some idx ->
      Alcotest.(check (list int)) "rebuilt index answers" [ 42 ]
        (Index.lookup_eq idx rel [ V.VInt 42 ])
  | None -> Alcotest.fail "index lost on repartition"

let test_rb_range_through_wrapper () =
  let cat = Helpers.small_catalog ~n:100 () in
  let rel = Storage.Catalog.find cat "t" in
  let idx = Index.build_rb rel ~attr:0 in
  Alcotest.(check (list int)) "range" [ 10; 11; 12 ]
    (List.sort compare
       (Index.lookup_range idx ~lo:(V.VInt 10) ~hi:(V.VInt 12)))

let test_index_traffic_counted () =
  let cat = Helpers.small_catalog ~n:500 () in
  let rel = Storage.Catalog.find cat "t" in
  let idx = Index.build_rb rel ~attr:0 in
  let hier = Option.get (Storage.Catalog.hier cat) in
  Memsim.Hierarchy.reset hier;
  ignore (Index.lookup_eq idx rel [ V.VInt 250 ]);
  let s = Memsim.Hierarchy.stats hier in
  Alcotest.(check bool) "tree descent generates accesses" true
    (s.Memsim.Stats.accesses > 3)

let suite =
  [
    Alcotest.test_case "hash basic" `Quick test_hash_basic;
    Alcotest.test_case "hash duplicates" `Quick test_hash_duplicates;
    Alcotest.test_case "hash rehash" `Quick test_hash_grows;
    Alcotest.test_case "hash negative keys" `Quick test_hash_negative_keys;
    Alcotest.test_case "hash key derivation" `Quick test_key_of_value;
    Alcotest.test_case "rb sorted range" `Quick test_rb_sorted_range;
    Alcotest.test_case "rb duplicates" `Quick test_rb_lookup_duplicates;
    Alcotest.test_case "rb invariants random" `Quick test_rb_invariants_random;
    Alcotest.test_case "rb invariants sorted" `Quick test_rb_invariants_sorted_inserts;
    QCheck_alcotest.to_alcotest qcheck_rb_range;
    Alcotest.test_case "verified lookup" `Quick test_index_verified_lookup;
    Alcotest.test_case "index maintenance" `Quick test_index_maintenance;
    Alcotest.test_case "index survives repartition" `Quick
      test_index_survives_repartition;
    Alcotest.test_case "rb range wrapper" `Quick test_rb_range_through_wrapper;
    Alcotest.test_case "index traffic counted" `Quick test_index_traffic_counted;
  ]
