(* Tests for UPDATE statements: SQL parsing, planning, execution on every
   engine, index interaction, and cost-model emission. *)

module V = Storage.Value
module Engine = Engines.Engine

let test_parse_update () =
  let cat = Helpers.small_catalog ~n:10 () in
  match
    Relalg.Sql.parse cat "update t set amount = amount + 1, grp = 0 where id = $1"
  with
  | Relalg.Plan.Update { table = "t"; assignments; pred = Some _ } ->
      Alcotest.(check (list int)) "assigned columns" [ 2; 1 ]
        (List.map fst assignments)
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Relalg.Plan.pp p)

let test_parse_update_no_where () =
  let cat = Helpers.small_catalog ~n:10 () in
  match Relalg.Sql.parse cat "update t set amount = 0" with
  | Relalg.Plan.Update { pred = None; assignments = [ (2, _) ]; _ } -> ()
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Relalg.Plan.pp p)

let run_update engine cat sql params =
  let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
  ignore (Engine.run engine cat plan ~params)

let test_update_executes engine () =
  let cat = Helpers.small_catalog ~n:30 () in
  let rel = Storage.Catalog.find cat "t" in
  run_update engine cat "update t set amount = 999 where grp = $1"
    [| V.VInt 2 |];
  for tid = 0 to 29 do
    let expected =
      if tid mod 7 = 2 then V.VInt 999 else V.VInt (tid * 3 mod 101)
    in
    Alcotest.(check Helpers.value_testable)
      (Printf.sprintf "amount of %d" tid)
      expected
      (Storage.Relation.get rel tid 2)
  done

let test_update_rhs_uses_old_values engine () =
  let cat = Helpers.small_catalog ~n:10 () in
  let rel = Storage.Catalog.find cat "t" in
  (* swap-like: both right-hand sides must see the OLD tuple *)
  run_update engine cat "update t set amount = id, id = amount where id = 4"
    [||];
  Alcotest.(check Helpers.value_testable) "amount := old id" (V.VInt 4)
    (Storage.Relation.get rel 4 2);
  Alcotest.(check Helpers.value_testable) "id := old amount"
    (V.VInt (4 * 3 mod 101))
    (Storage.Relation.get rel 4 0)

let test_update_via_index () =
  let cat = Helpers.small_catalog ~n:500 () in
  Storage.Catalog.create_index cat "t" ~name:"pk" ~kind:Storage.Index.Hash
    ~attrs:[ "id" ];
  let logical =
    Relalg.Sql.parse cat "update t set name = 'patched' where id = $1"
  in
  (match Relalg.Planner.plan cat logical with
  | Relalg.Physical.Update { access = Relalg.Physical.Index_eq _; _ } -> ()
  | p ->
      Alcotest.fail
        (Format.asprintf "expected index update: %a" Relalg.Physical.pp p));
  let plan = Relalg.Planner.plan cat logical in
  ignore (Engine.run Engine.Jit cat plan ~params:[| V.VInt 77 |]);
  let rel = Storage.Catalog.find cat "t" in
  Alcotest.(check Helpers.value_testable) "patched" (V.VStr "patched")
    (Storage.Relation.get rel 77 3)

let test_update_rebuilds_touched_index () =
  let cat = Helpers.small_catalog ~n:100 () in
  Storage.Catalog.create_index cat "t" ~name:"pk" ~kind:Storage.Index.Hash
    ~attrs:[ "id" ];
  (* move id 5 to id 5005: the index must follow *)
  run_update Engine.Jit cat "update t set id = 5005 where id = 5" [||];
  let rel = Storage.Catalog.find cat "t" in
  match Storage.Catalog.find_index cat "t" ~attrs:[ 0 ] with
  | Some idx ->
      Alcotest.(check (list int)) "new key found" [ 5 ]
        (Storage.Index.lookup_eq idx rel [ V.VInt 5005 ]);
      Alcotest.(check (list int)) "old key gone" []
        (Storage.Index.lookup_eq idx rel [ V.VInt 5 ])
  | None -> Alcotest.fail "index missing"

let test_update_index_cheaper_than_scan () =
  let cat = Helpers.small_catalog ~n:5000 () in
  Storage.Catalog.create_index cat "t" ~name:"pk" ~kind:Storage.Index.Hash
    ~attrs:[ "id" ];
  let logical = Relalg.Sql.parse cat "update t set amount = 1 where id = $1" in
  let cycles ~use_indexes =
    let plan = Relalg.Planner.plan ~use_indexes cat logical in
    let _, st =
      Engine.run_measured Engine.Jit cat plan ~params:[| V.VInt 2500 |]
    in
    Memsim.Stats.total_cycles st
  in
  Alcotest.(check bool) "indexed update much cheaper" true
    (50 * cycles ~use_indexes:true < cycles ~use_indexes:false)

let test_update_emission () =
  let cat = Helpers.small_catalog ~n:1000 () in
  let plan =
    Relalg.Planner.plan cat
      (Relalg.Sql.parse cat "update t set amount = 0 where grp = $1")
  in
  let pattern, descs = Costmodel.Emit.emit cat plan in
  Alcotest.(check bool) "write atoms present" true
    (List.exists
       (function Costmodel.Pattern.Rr_acc _ -> true | _ -> false)
       (Costmodel.Pattern.atoms pattern));
  Alcotest.(check bool) "rand descriptor for assigned attrs" true
    (List.exists
       (fun d -> d.Costmodel.Emit.kind = Costmodel.Emit.Rand)
       descs);
  Alcotest.(check bool) "cost positive" true
    (Costmodel.Model.query_cost cat plan > 0.0)

let per_engine name f =
  List.map
    (fun e ->
      Alcotest.test_case
        (Printf.sprintf "%s [%s]" name (Engine.name e))
        `Quick (f e))
    Engine.all

let suite =
  [
    Alcotest.test_case "parse update" `Quick test_parse_update;
    Alcotest.test_case "parse update without where" `Quick
      test_parse_update_no_where;
  ]
  @ per_engine "update executes" test_update_executes
  @ per_engine "rhs sees old values" test_update_rhs_uses_old_values
  @ [
      Alcotest.test_case "update via index" `Quick test_update_via_index;
      Alcotest.test_case "update rebuilds index" `Quick
        test_update_rebuilds_touched_index;
      Alcotest.test_case "indexed update cheaper" `Quick
        test_update_index_cheaper_than_scan;
      Alcotest.test_case "update emission" `Quick test_update_emission;
    ]
