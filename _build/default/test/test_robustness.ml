(* Robustness battery: generated SQL across all engines, sensitivity of the
   simulator/cost model to hierarchy parameters, and optimizer guarantees on
   random workloads. *)

module V = Storage.Value
module Engine = Engines.Engine

(* ------------------------------------------------------------------ *)
(* Generated SQL: every engine returns the same rows and nothing crashes *)
(* ------------------------------------------------------------------ *)

let sql_gen =
  QCheck.Gen.(
    let cols = [ "id"; "grp"; "amount" ] in
    let* col = oneofl cols in
    let* op = oneofl [ "<"; "<="; ">"; ">="; "="; "<>" ] in
    let* bound = int_bound 120 in
    let* second_pred = bool in
    let* col2 = oneofl cols in
    let* bound2 = int_bound 120 in
    let* connective = oneofl [ "and"; "or" ] in
    let* shape = int_bound 3 in
    let* limit = int_range 1 20 in
    let where =
      if second_pred then
        Printf.sprintf "where %s %s %d %s %s < %d" col op bound connective col2
          bound2
      else Printf.sprintf "where %s %s %d" col op bound
    in
    let sql =
      match shape with
      | 0 -> Printf.sprintf "select id, amount from t %s order by id" where
      | 1 ->
          Printf.sprintf
            "select grp, count(*) c, sum(amount) s from t %s group by grp \
             order by grp"
            where
      | 2 ->
          Printf.sprintf
            "select count(*) c, min(id) mn, max(id) mx, avg(amount) a from t \
             %s"
            where
      | _ ->
          Printf.sprintf
            "select id %% 5 b, count(*) c from t %s group by b order by c \
             desc, b limit %d"
            where limit
    in
    return sql)

let qcheck_generated_sql_agreement =
  QCheck.Test.make ~count:80 ~name:"generated SQL: all engines agree"
    (QCheck.make sql_gen)
    (fun sql ->
      let cat = Helpers.small_catalog ~n:130 () in
      let results =
        List.map
          (fun e -> Helpers.sorted_rows (Helpers.run_sql ~engine:e cat sql))
          Engine.all
      in
      match results with
      | r :: rest -> List.for_all (fun x -> x = r) rest
      | [] -> true)

let qcheck_generated_sql_on_hybrid_layouts =
  QCheck.Test.make ~count:40
    ~name:"generated SQL: layout changes never change results"
    (QCheck.make QCheck.Gen.(pair sql_gen (int_bound 1000)))
    (fun (sql, seed) ->
      let cat = Helpers.small_catalog ~n:90 () in
      let reference = Helpers.sorted_rows (Helpers.run_sql cat sql) in
      let rng = Mrdb_util.Rng.create seed in
      (* random partitioning of the five attributes *)
      let assignment = Array.init 5 (fun _ -> Mrdb_util.Rng.int rng 3) in
      let groups =
        List.filter_map
          (fun g ->
            let attrs =
              List.filteri (fun a _ -> assignment.(a) = g) [ 0; 1; 2; 3; 4 ]
            in
            match attrs with
            | [] -> None
            | _ ->
                Some
                  (List.filteri (fun a _ -> assignment.(a) = g) [ 0; 1; 2; 3; 4 ]))
          [ 0; 1; 2 ]
      in
      let groups = List.map (fun g -> List.map (fun x -> x) g) groups in
      Storage.Catalog.set_layout cat "t"
        (Storage.Layout.of_indices Helpers.small_schema groups);
      Helpers.sorted_rows (Helpers.run_sql cat sql) = reference)

(* ------------------------------------------------------------------ *)
(* Hierarchy-parameter sensitivity                                     *)
(* ------------------------------------------------------------------ *)

let scan_cycles params n =
  let hier = Memsim.Hierarchy.create ~params () in
  let cat = Storage.Catalog.create ~hier () in
  let rel =
    Storage.Catalog.add cat Helpers.small_schema
      (Storage.Layout.column Helpers.small_schema)
  in
  Helpers.fill_small rel n;
  let plan =
    Relalg.Planner.plan cat (Relalg.Sql.parse cat "select sum(amount) s from t")
  in
  let _, st = Engine.run_measured Engine.Jit cat plan ~params:[||] in
  Memsim.Stats.total_cycles st

let test_memory_latency_sensitivity () =
  let slow =
    { Memsim.Params.nehalem with Memsim.Params.memory_latency = 200 }
  in
  Alcotest.(check bool) "slower memory, higher cost" true
    (scan_cycles slow 20_000 > scan_cycles Memsim.Params.nehalem 20_000)

let test_tiny_cache_sensitivity () =
  (* shrink every cache: random-access workloads must get more expensive *)
  let tiny =
    Memsim.Params.scaled ~l1:1024 ~l2:4096 ~l3:16384 Memsim.Params.nehalem
  in
  let probe params =
    let hier = Memsim.Hierarchy.create ~params () in
    let rng = Mrdb_util.Rng.create 5 in
    for _ = 1 to 50_000 do
      Memsim.Hierarchy.read hier
        ~addr:(Mrdb_util.Rng.int rng (1 lsl 20) * 8)
        ~width:8
    done;
    (Memsim.Hierarchy.stats hier).Memsim.Stats.mem_cycles
  in
  Alcotest.(check bool) "smaller caches, more cycles" true
    (probe tiny > probe Memsim.Params.nehalem)

let test_cost_model_follows_params () =
  let atom = Costmodel.Pattern.rr_acc ~n:1_000_000 ~w:64 ~r:100_000 () in
  let base = Costmodel.Cost_function.cost Memsim.Params.nehalem atom in
  let slow =
    { Memsim.Params.nehalem with Memsim.Params.memory_latency = 120 }
  in
  let slow_cost = Costmodel.Cost_function.cost slow atom in
  Alcotest.(check bool) "model scales with memory latency" true
    (slow_cost > 2.0 *. base)

(* ------------------------------------------------------------------ *)
(* Optimizer guarantees                                                 *)
(* ------------------------------------------------------------------ *)

let qcheck_optimizer_never_worse =
  QCheck.Test.make ~count:15
    ~name:"BPi layout never estimated worse than row or column"
    (QCheck.make QCheck.Gen.(pair (int_bound 1000) (int_range 1 3)))
    (fun (seed, n_queries) ->
      let cat = Helpers.small_catalog ~n:400 () in
      let rng = Mrdb_util.Rng.create seed in
      let sqls =
        List.init n_queries (fun _ ->
            let col = Mrdb_util.Rng.choose rng [| "id"; "grp"; "amount" |] in
            let proj = Mrdb_util.Rng.choose rng [| "score"; "name"; "amount" |] in
            Printf.sprintf "select %s from t where %s < %d" proj col
              (Mrdb_util.Rng.int rng 100))
      in
      let wl =
        List.map
          (fun sql -> (Relalg.Planner.plan cat (Relalg.Sql.parse cat sql), 1.0))
          sqls
      in
      let r = Layoutopt.Optimizer.optimize_table cat "t" wl in
      r.Layoutopt.Optimizer.estimated_cost
      <= r.Layoutopt.Optimizer.row_cost +. 1e-6
      && r.Layoutopt.Optimizer.estimated_cost
         <= r.Layoutopt.Optimizer.column_cost +. 1e-6)

(* updates interleaved with reads stay consistent on every engine *)
let test_update_read_interleaving () =
  List.iter
    (fun engine ->
      let cat = Helpers.small_catalog ~n:40 () in
      ignore
        (Helpers.run_sql ~engine cat "update t set amount = amount * 2 where grp = 1");
      ignore
        (Helpers.run_sql ~engine cat "update t set amount = amount + 1 where grp = 1");
      let r =
        Helpers.run_sql ~engine cat
          "select sum(amount) s from t where grp = 1"
      in
      let expected =
        List.init 40 Fun.id
        |> List.filter (fun i -> i mod 7 = 1)
        |> List.fold_left (fun acc i -> acc + ((i * 3 mod 101) * 2) + 1) 0
      in
      Helpers.check_rows
        (Printf.sprintf "interleaved updates [%s]" (Engine.name engine))
        [ [| V.VInt expected |] ]
        r.Engines.Runtime.rows)
    Engine.all

(* auxiliary surfaces (codegen, explain) must accept anything the planner
   produces *)
let qcheck_codegen_and_explain_total =
  QCheck.Test.make ~count:60
    ~name:"codegen and explain never raise on generated SQL"
    (QCheck.make sql_gen)
    (fun sql ->
      let cat = Helpers.small_catalog ~n:50 () in
      let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
      let code = Engines.C_emitter.emit cat plan in
      let explanation = Costmodel.Model.explain cat plan in
      String.length code > 0 && String.length explanation > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_generated_sql_agreement;
    QCheck_alcotest.to_alcotest qcheck_codegen_and_explain_total;
    QCheck_alcotest.to_alcotest qcheck_generated_sql_on_hybrid_layouts;
    Alcotest.test_case "memory latency sensitivity" `Quick
      test_memory_latency_sensitivity;
    Alcotest.test_case "tiny cache sensitivity" `Quick test_tiny_cache_sensitivity;
    Alcotest.test_case "cost model follows params" `Quick
      test_cost_model_follows_params;
    QCheck_alcotest.to_alcotest qcheck_optimizer_never_worse;
    Alcotest.test_case "update/read interleaving" `Quick
      test_update_read_interleaving;
  ]
