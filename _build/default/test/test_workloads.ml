(* Tests for the benchmark workloads: schemas load, generators respect the
   documented properties, queries run and return plausible results. *)

module V = Storage.Value
module Engine = Engines.Engine

let run_query cat (q : Workloads.Workload.query) =
  Engine.run Engine.Jit cat
    (q.Workloads.Workload.make_plan ~use_indexes:false)
    ~params:q.Workloads.Workload.params

let test_microbench_selectivity () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:20_000 () in
  let r =
    Engine.run Engine.Jit cat
      (Workloads.Microbench.plan cat ~sel:0.1)
      ~params:(Workloads.Microbench.params ~sel:0.1)
  in
  Alcotest.(check int) "single aggregate row" 1 (List.length r.Engines.Runtime.rows);
  (* verify the actual match fraction is near 10% *)
  let rel = Storage.Catalog.find cat "R" in
  let threshold = Workloads.Microbench.domain / 10 in
  let matches = ref 0 in
  for tid = 0 to 19_999 do
    if V.to_int (Storage.Relation.get rel tid 0) < threshold then incr matches
  done;
  Alcotest.(check bool) "selectivity close to 10%" true
    (abs (!matches - 2000) < 300)

let test_microbench_all_engines_agree () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:5_000 () in
  List.iter
    (fun layout ->
      Storage.Catalog.set_layout cat "R" layout;
      let plan = Workloads.Microbench.plan cat ~sel:0.05 in
      let params = Workloads.Microbench.params ~sel:0.05 in
      let results =
        List.map
          (fun e -> (Engine.run e cat plan ~params).Engines.Runtime.rows)
          Engine.all
      in
      match results with
      | ref :: rest ->
          List.iter (fun r -> Helpers.check_rows "sums agree" ref r) rest
      | [] -> ())
    [
      Storage.Layout.row Workloads.Microbench.schema;
      Workloads.Microbench.pdsm_layout;
    ]

let test_sap_sd_builds () =
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale:0.05 () in
  let cat = sd.Workloads.Sap_sd.cat in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "%s populated" t)
        true
        (Storage.Relation.nrows (Storage.Catalog.find cat t) > 0))
    Workloads.Sap_sd.tables;
  Alcotest.(check int) "12 queries" 12 (List.length sd.Workloads.Sap_sd.queries)

let test_sap_sd_queries_run () =
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale:0.05 () in
  let cat = sd.Workloads.Sap_sd.cat in
  List.iter
    (fun (q : Workloads.Workload.query) ->
      let r = run_query cat q in
      ignore r.Engines.Runtime.rows)
    sd.Workloads.Sap_sd.queries

let test_sap_sd_q1_matches () =
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale:0.2 () in
  let cat = sd.Workloads.Sap_sd.cat in
  let q1 = Workloads.Sap_sd.query sd "Q1" in
  let r = run_query cat q1 in
  (* the generator draws NAME1/NAME2 from a 100-name pool, so the pattern
     parameters must match something *)
  Alcotest.(check bool) "Q1 finds rows" true
    (List.length r.Engines.Runtime.rows > 0)

let test_sap_sd_q6_inserts () =
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale:0.05 () in
  let cat = sd.Workloads.Sap_sd.cat in
  let before = Storage.Relation.nrows (Storage.Catalog.find cat "VBAP") in
  ignore (run_query cat (Workloads.Sap_sd.query sd "Q6"));
  Alcotest.(check int) "one row inserted" (before + 1)
    (Storage.Relation.nrows (Storage.Catalog.find cat "VBAP"))

let test_sap_sd_indexes () =
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale:0.05 () in
  Workloads.Sap_sd.create_indexes sd;
  let cat = sd.Workloads.Sap_sd.cat in
  let q7 = Workloads.Sap_sd.query sd "Q7" in
  let indexed =
    Engine.run Engine.Jit cat
      (q7.Workloads.Workload.make_plan ~use_indexes:true)
      ~params:q7.Workloads.Workload.params
  in
  let scanned =
    Engine.run Engine.Jit cat
      (q7.Workloads.Workload.make_plan ~use_indexes:false)
      ~params:q7.Workloads.Workload.params
  in
  Helpers.check_rows "index and scan agree"
    (Helpers.sorted_rows scanned) (Helpers.sorted_rows indexed)

let test_ch_builds_and_runs () =
  let hier = Memsim.Hierarchy.create () in
  let ch = Workloads.Ch.build ~hier ~scale:0.05 () in
  let cat = ch.Workloads.Ch.cat in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "%s populated" t)
        true
        (Storage.Relation.nrows (Storage.Catalog.find cat t) > 0))
    Workloads.Ch.tables;
  List.iter
    (fun (q : Workloads.Workload.query) ->
      let r = run_query cat q in
      if not q.Workloads.Workload.modifies then
        Alcotest.(check bool)
          (Printf.sprintf "%s returns rows" q.Workloads.Workload.name)
          true
          (List.length r.Engines.Runtime.rows > 0))
    ch.Workloads.Ch.queries

let test_ch1_aggregates_consistent () =
  let hier = Memsim.Hierarchy.create () in
  let ch = Workloads.Ch.build ~hier ~scale:0.05 () in
  let cat = ch.Workloads.Ch.cat in
  let r = run_query cat (Workloads.Ch.query ch "CH1") in
  (* count over all groups equals matching order lines *)
  let counted =
    List.fold_left
      (fun acc row -> acc + V.to_int row.(5))
      0 r.Engines.Runtime.rows
  in
  Alcotest.(check bool) "grouped counts positive and bounded" true
    (counted > 0
    && counted
       <= Storage.Relation.nrows (Storage.Catalog.find cat "order_line"))

let test_cnet_sparsity () =
  let hier = Memsim.Hierarchy.create () in
  let cn = Workloads.Cnet.build ~hier ~n_products:2000 ~n_extra:50 ~avg_filled:11 () in
  let rel = Storage.Catalog.find cn.Workloads.Cnet.cat "products" in
  let non_null = ref 0 in
  for tid = 0 to 499 do
    for a = 6 to 55 do
      if not (V.is_null (Storage.Relation.get rel tid a)) then incr non_null
    done
  done;
  let avg = float_of_int !non_null /. 500.0 in
  Alcotest.(check bool)
    (Printf.sprintf "avg filled extras near 11 (got %.1f)" avg)
    true
    (avg > 8.0 && avg < 14.0)

let test_cnet_queries_run () =
  let hier = Memsim.Hierarchy.create () in
  let cn = Workloads.Cnet.build ~hier ~n_products:20_000 ~n_extra:30 () in
  let cat = cn.Workloads.Cnet.cat in
  List.iter
    (fun (q : Workloads.Workload.query) ->
      let r = run_query cat q in
      Alcotest.(check bool)
        (Printf.sprintf "%s returns rows" q.Workloads.Workload.name)
        true
        (List.length r.Engines.Runtime.rows > 0))
    cn.Workloads.Cnet.queries

let test_cnet_c4_frequency () =
  let hier = Memsim.Hierarchy.create () in
  let cn = Workloads.Cnet.build ~hier ~n_products:100 ~n_extra:10 () in
  let c4 = Workloads.Cnet.query cn "C4" in
  Alcotest.(check (float 0.1)) "C4 frequency from Table V" 10_000.0
    c4.Workloads.Workload.freq

let test_determinism_across_builds () =
  let build () =
    let hier = Memsim.Hierarchy.create () in
    let sd = Workloads.Sap_sd.build ~hier ~scale:0.05 () in
    let cat = sd.Workloads.Sap_sd.cat in
    let rel = Storage.Catalog.find cat "ADRC" in
    List.init 20 (Storage.Relation.get_tuple rel)
  in
  Helpers.check_rows "generator deterministic" (build ()) (build ())

let suite =
  [
    Alcotest.test_case "microbench selectivity" `Quick test_microbench_selectivity;
    Alcotest.test_case "microbench engines agree" `Quick
      test_microbench_all_engines_agree;
    Alcotest.test_case "sap-sd builds" `Quick test_sap_sd_builds;
    Alcotest.test_case "sap-sd queries run" `Quick test_sap_sd_queries_run;
    Alcotest.test_case "sap-sd q1 matches" `Quick test_sap_sd_q1_matches;
    Alcotest.test_case "sap-sd q6 inserts" `Quick test_sap_sd_q6_inserts;
    Alcotest.test_case "sap-sd index agreement" `Quick test_sap_sd_indexes;
    Alcotest.test_case "ch builds and runs" `Quick test_ch_builds_and_runs;
    Alcotest.test_case "ch1 aggregates" `Quick test_ch1_aggregates_consistent;
    Alcotest.test_case "cnet sparsity" `Quick test_cnet_sparsity;
    Alcotest.test_case "cnet queries run" `Quick test_cnet_queries_run;
    Alcotest.test_case "cnet frequencies" `Quick test_cnet_c4_frequency;
    Alcotest.test_case "generator determinism" `Quick
      test_determinism_across_builds;
  ]
