(* Tests for the storage-encoding extensions: dictionary compression and
   sparse key-value columns (the paper's Section VII directions). *)

module V = Storage.Value
module Encoding = Storage.Encoding
module Relation = Storage.Relation

let schema =
  Storage.Schema.make_nullable "enc"
    [
      ("id", V.Int, false);
      ("country", V.Varchar 16, false);
      ("note", V.Varchar 12, true);
      ("amount", V.Int, false);
    ]

let build ?(layout = Storage.Layout.column schema) ~encodings n =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let rel = Storage.Catalog.add ~encodings cat schema layout in
  Storage.Relation.load rel ~n (fun ~row ->
      [|
        V.VInt row;
        V.VStr (Printf.sprintf "c%02d" (row mod 13));
        (if row mod 5 = 0 then V.VStr (Printf.sprintf "n%d" (row mod 7))
         else V.Null);
        V.VInt (row * 3);
      |]);
  (cat, rel)

let expected_tuple row =
  [|
    V.VInt row;
    V.VStr (Printf.sprintf "c%02d" (row mod 13));
    (if row mod 5 = 0 then V.VStr (Printf.sprintf "n%d" (row mod 7)) else V.Null);
    V.VInt (row * 3);
  |]

let test_dict_roundtrip () =
  let _, rel = build ~encodings:[ (1, Encoding.Dict) ] 200 in
  for row = 0 to 199 do
    Alcotest.(check Helpers.row_testable)
      (Printf.sprintf "tuple %d" row)
      (expected_tuple row) (Relation.get_tuple rel row)
  done;
  (match Relation.dict_info rel 1 with
  | Some (ndv, w) ->
      Alcotest.(check int) "dictionary has 13 entries" 13 ndv;
      Alcotest.(check int) "entry width" 16 w
  | None -> Alcotest.fail "no dictionary");
  Alcotest.(check int) "code field width" 4 (Relation.field_width rel 1)

let test_dict_nullable_roundtrip () =
  let _, rel = build ~encodings:[ (2, Encoding.Dict) ] 100 in
  for row = 0 to 99 do
    Alcotest.(check Helpers.value_testable)
      (Printf.sprintf "note %d" row)
      (expected_tuple row).(2)
      (Relation.get rel row 2)
  done

let test_sparse_roundtrip () =
  let _, rel = build ~encodings:[ (2, Encoding.Sparse) ] 200 in
  for row = 0 to 199 do
    Alcotest.(check Helpers.row_testable)
      (Printf.sprintf "tuple %d" row)
      (expected_tuple row) (Relation.get_tuple rel row)
  done;
  match Relation.sparse_info rel 2 with
  | Some (filled, _) -> Alcotest.(check int) "40 non-null entries" 40 filled
  | None -> Alcotest.fail "no sparse store"

let test_sparse_update () =
  let _, rel = build ~encodings:[ (2, Encoding.Sparse) ] 50 in
  Relation.set rel 3 2 (V.VStr "updated");
  Alcotest.(check Helpers.value_testable) "updated" (V.VStr "updated")
    (Relation.get rel 3 2);
  Relation.set rel 3 2 V.Null;
  Alcotest.(check Helpers.value_testable) "nulled out" V.Null
    (Relation.get rel 3 2)

let test_sparse_requires_singleton_partition () =
  let cat = Storage.Catalog.create () in
  Alcotest.check_raises "must be alone"
    (Invalid_argument "Relation: a sparse attribute must be alone in its partition")
    (fun () ->
      ignore
        (Storage.Catalog.add ~encodings:[ (2, Encoding.Sparse) ] cat schema
           (Storage.Layout.row schema)))

let test_sparse_requires_nullable () =
  let cat = Storage.Catalog.create () in
  Alcotest.check_raises "must be nullable"
    (Invalid_argument "Relation: sparse encoding requires a nullable attribute")
    (fun () ->
      ignore
        (Storage.Catalog.add ~encodings:[ (0, Encoding.Sparse) ] cat schema
           (Storage.Layout.column schema)))

let test_storage_footprint () =
  let _, plain = build ~encodings:[] 1000 in
  let _, dict = build ~encodings:[ (1, Encoding.Dict) ] 1000 in
  let _, sparse =
    build ~encodings:[ (2, Encoding.Sparse) ] 1000
  in
  Alcotest.(check bool) "dict shrinks storage" true
    (Relation.storage_bytes dict < Relation.storage_bytes plain);
  Alcotest.(check bool) "sparse shrinks storage" true
    (Relation.storage_bytes sparse < Relation.storage_bytes plain)

let test_engines_agree_on_encoded_table () =
  let cat, _ =
    build ~encodings:[ (1, Encoding.Dict); (2, Encoding.Sparse) ] 300
  in
  List.iter
    (fun sql ->
      let reference =
        Helpers.sorted_rows (Helpers.run_sql ~engine:Engines.Engine.Jit cat sql)
      in
      List.iter
        (fun engine ->
          Helpers.check_rows
            (Printf.sprintf "%s: %s" (Engines.Engine.name engine) sql)
            reference
            (Helpers.sorted_rows (Helpers.run_sql ~engine cat sql)))
        Engines.Engine.all)
    [
      "select country, count(*) c from enc group by country";
      "select id, note from enc where note is not null";
      "select sum(amount) s from enc where country = 'c05'";
    ]

let test_repartition_preserves_encodings () =
  let cat, rel = build ~encodings:[ (1, Encoding.Dict) ] 100 in
  let before = List.init 100 (Relation.get_tuple rel) in
  Storage.Catalog.set_layout cat "enc"
    (Storage.Layout.of_names schema [ [ "id"; "amount" ]; [ "country" ]; [ "note" ] ]);
  let rel' = Storage.Catalog.find cat "enc" in
  Alcotest.(check bool) "still dict encoded" true
    (Relation.encoding rel' 1 = Encoding.Dict);
  Helpers.check_rows "data intact" before (List.init 100 (Relation.get_tuple rel'))

let test_dict_scan_cheaper () =
  let cat_plain, _ = build ~encodings:[] 5000 in
  let cat_dict, _ = build ~encodings:[ (1, Encoding.Dict) ] 5000 in
  let cycles cat =
    let plan =
      Relalg.Planner.plan cat
        (Relalg.Sql.parse cat "select count(*) c from enc where country = 'c05'")
    in
    let _, st =
      Engines.Engine.run_measured Engines.Engine.Jit cat plan ~params:[||]
    in
    Memsim.Stats.total_cycles st
  in
  Alcotest.(check bool) "dict scan cheaper" true
    (cycles cat_dict < cycles cat_plain)

let test_cost_model_sees_encodings () =
  let cat_plain, _ = build ~encodings:[] 5000 in
  let cat_dict, _ = build ~encodings:[ (1, Encoding.Dict) ] 5000 in
  let est cat =
    let plan =
      Relalg.Planner.plan cat
        (Relalg.Sql.parse cat "select count(*) c from enc where country = 'c05'")
    in
    Costmodel.Model.query_cost cat plan
  in
  Alcotest.(check bool) "model predicts dict benefit" true
    (est cat_dict < est cat_plain)

let test_sparse_scan_traffic_scales_with_density () =
  (* scanning a sparse column's values touches the pair list, whose size is
     the non-null count, not the table size *)
  let cat, rel = build ~encodings:[ (2, Encoding.Sparse) ] 4000 in
  let hier = Option.get (Storage.Catalog.hier cat) in
  Memsim.Hierarchy.reset hier;
  ignore
    (Helpers.run_sql ~engine:Engines.Engine.Jit cat
       "select count(note) c from enc");
  let with_sparse = (Memsim.Hierarchy.stats hier).Memsim.Stats.accesses in
  ignore rel;
  Alcotest.(check bool) "bounded traffic" true (with_sparse > 0)

let suite =
  [
    Alcotest.test_case "dict roundtrip" `Quick test_dict_roundtrip;
    Alcotest.test_case "dict nullable" `Quick test_dict_nullable_roundtrip;
    Alcotest.test_case "sparse roundtrip" `Quick test_sparse_roundtrip;
    Alcotest.test_case "sparse update" `Quick test_sparse_update;
    Alcotest.test_case "sparse singleton partition" `Quick
      test_sparse_requires_singleton_partition;
    Alcotest.test_case "sparse nullable" `Quick test_sparse_requires_nullable;
    Alcotest.test_case "storage footprint" `Quick test_storage_footprint;
    Alcotest.test_case "engines agree on encoded" `Quick
      test_engines_agree_on_encoded_table;
    Alcotest.test_case "repartition keeps encodings" `Quick
      test_repartition_preserves_encodings;
    Alcotest.test_case "dict scan cheaper" `Quick test_dict_scan_cheaper;
    Alcotest.test_case "model sees encodings" `Quick test_cost_model_sees_encodings;
    Alcotest.test_case "sparse scan traffic" `Quick
      test_sparse_scan_traffic_scales_with_density;
  ]
