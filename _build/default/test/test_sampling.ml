(* Tests for sampling-based selectivity and distinct-count estimation. *)

module V = Storage.Value
module Sampling = Relalg.Sampling
module Expr = Relalg.Expr

let pred_grp_eq = Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Param 1)

let test_selectivity_accurate () =
  let cat = Helpers.small_catalog ~n:2000 () in
  (* grp = tid mod 7: true selectivity 1/7 *)
  let est =
    Sampling.selectivity cat "t" pred_grp_eq ~params:[| V.VInt 3 |]
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.3f near 1/7" est)
    true
    (Float.abs (est -. (1.0 /. 7.0)) < 0.05)

let test_selectivity_zero_clamped () =
  let cat = Helpers.small_catalog ~n:2000 () in
  let est =
    Sampling.selectivity cat "t" pred_grp_eq ~params:[| V.VInt 999 |]
  in
  Alcotest.(check bool) "never exactly zero" true (est > 0.0 && est < 0.01)

let test_selectivity_untraced () =
  let cat = Helpers.small_catalog ~n:2000 () in
  let hier = Option.get (Storage.Catalog.hier cat) in
  Memsim.Hierarchy.reset hier;
  ignore (Sampling.selectivity cat "t" pred_grp_eq ~params:[| V.VInt 3 |]);
  Alcotest.(check int) "sampling leaves no trace" 0
    (Memsim.Hierarchy.stats hier).Memsim.Stats.accesses

let test_selectivity_empty_table () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  ignore
    (Storage.Catalog.add cat Helpers.small_schema
       (Storage.Layout.row Helpers.small_schema));
  let est = Sampling.selectivity cat "t" pred_grp_eq ~params:[| V.VInt 1 |] in
  Alcotest.(check bool) "falls back to heuristic" true (est > 0.0 && est <= 1.0)

let test_ndv_low_cardinality () =
  let cat = Helpers.small_catalog ~n:2000 () in
  (* grp has exactly 7 distinct values *)
  let ndv = Sampling.n_distinct cat "t" 1 in
  Alcotest.(check bool)
    (Printf.sprintf "ndv %.0f near 7" ndv)
    true
    (ndv >= 6.0 && ndv <= 8.0)

let test_ndv_unique_column () =
  let cat = Helpers.small_catalog ~n:2000 () in
  (* id is unique *)
  let ndv = Sampling.n_distinct cat "t" 0 in
  Alcotest.(check bool)
    (Printf.sprintf "ndv %.0f scales to ~2000" ndv)
    true
    (ndv > 1500.0 && ndv <= 2000.0)

let test_planner_sample_with () =
  let cat = Helpers.small_catalog ~n:2000 () in
  let logical = Relalg.Sql.parse cat "select id from t where grp = $1" in
  let plan =
    Relalg.Planner.plan ~sample_with:[| V.VInt 3 |] cat logical
  in
  match plan with
  | Relalg.Physical.Project
      { child = Relalg.Physical.Scan { sel; _ }; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "planner uses sampled sel %.3f" sel)
        true
        (Float.abs (sel -. (1.0 /. 7.0)) < 0.05)
  | p -> Alcotest.fail (Format.asprintf "unexpected %a" Relalg.Physical.pp p)

let test_sampled_plan_improves_cost_estimate () =
  (* with a skewed predicate the heuristic (1%) is far off; sampling fixes
     the cardinality fed to the cost model *)
  let cat = Helpers.small_catalog ~n:4000 () in
  let logical = Relalg.Sql.parse cat "select id from t where grp >= 1" in
  let heuristic = Relalg.Planner.plan cat logical in
  let sampled = Relalg.Planner.plan ~sample_with:[||] cat logical in
  let card p = Relalg.Physical.cardinality cat p in
  (* true selectivity is 6/7 ≈ 0.857 *)
  Alcotest.(check bool) "sampled cardinality close to truth" true
    (Float.abs (card sampled -. (4000.0 *. 6.0 /. 7.0)) < 300.0);
  Alcotest.(check bool) "heuristic cardinality far off" true
    (Float.abs (card heuristic -. (4000.0 *. 6.0 /. 7.0)) > 1000.0)

let suite =
  [
    Alcotest.test_case "selectivity accuracy" `Quick test_selectivity_accurate;
    Alcotest.test_case "zero clamped" `Quick test_selectivity_zero_clamped;
    Alcotest.test_case "sampling untraced" `Quick test_selectivity_untraced;
    Alcotest.test_case "empty table fallback" `Quick test_selectivity_empty_table;
    Alcotest.test_case "ndv low cardinality" `Quick test_ndv_low_cardinality;
    Alcotest.test_case "ndv unique column" `Quick test_ndv_unique_column;
    Alcotest.test_case "planner sample_with" `Quick test_planner_sample_with;
    Alcotest.test_case "sampling beats heuristic" `Quick
      test_sampled_plan_improves_cost_estimate;
  ]

let test_sampled_group_count () =
  let cat = Helpers.small_catalog ~n:2000 () in
  let logical =
    Relalg.Sql.parse cat "select grp, count(*) c from t group by grp"
  in
  match Relalg.Planner.plan ~sample_with:[||] cat logical with
  | Relalg.Physical.Project
      { child = Relalg.Physical.Group_by { n_groups; _ }; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "n_groups %.1f near 7" n_groups)
        true
        (n_groups >= 5.0 && n_groups <= 9.0)
  | p -> Alcotest.fail (Format.asprintf "unexpected %a" Relalg.Physical.pp p)

let suite =
  suite
  @ [
      Alcotest.test_case "sampled group count" `Quick test_sampled_group_count;
    ]
