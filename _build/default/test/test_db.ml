(* Tests for the high-level Core.Db API. *)

module V = Storage.Value
module Db = Core.Db

let make_db () =
  let db = Db.create () in
  Db.create_table db "emp"
    [ ("eid", V.Int); ("dept", V.Varchar 8); ("salary", V.Int) ]
    ();
  List.iteri
    (fun i dept ->
      Db.insert db "emp" [| V.VInt i; V.VStr dept; V.VInt ((i * 7 mod 5) * 1000) |])
    [ "eng"; "eng"; "sales"; "eng"; "hr"; "sales"; "hr"; "eng" ];
  db

let test_exec_select () =
  let db = make_db () in
  let r = Db.exec db "select eid from emp where dept = 'hr' order by eid" in
  Helpers.check_rows "hr employees"
    [ [| V.VInt 4 |]; [| V.VInt 6 |] ]
    r.Engines.Runtime.rows

let test_exec_group () =
  let db = make_db () in
  let r =
    Db.exec db "select dept, count(*) c from emp group by dept order by dept"
  in
  Helpers.check_rows "dept counts"
    [
      [| V.VStr "eng"; V.VInt 4 |];
      [| V.VStr "hr"; V.VInt 2 |];
      [| V.VStr "sales"; V.VInt 2 |];
    ]
    r.Engines.Runtime.rows

let test_exec_params_and_engines () =
  let db = make_db () in
  List.iter
    (fun engine ->
      let r =
        Db.exec ~engine ~params:[| V.VInt 2000 |] db
          "select count(*) c from emp where salary >= $1"
      in
      Helpers.check_rows
        (Printf.sprintf "count on %s" (Engines.Engine.name engine))
        [ [| V.VInt 5 |] ]
        r.Engines.Runtime.rows)
    Engines.Engine.all

let test_exec_measured () =
  let db = make_db () in
  let _, st = Db.exec_measured db "select sum(salary) s from emp" in
  Alcotest.(check bool) "cycles accounted" true (Memsim.Stats.total_cycles st > 0)

let test_unsimulated_db () =
  let db = Db.create ~simulate:false () in
  Db.create_table db "x" [ ("a", V.Int) ] ();
  Db.insert db "x" [| V.VInt 1 |];
  let r, st = Db.exec_measured db "select a from x" in
  Alcotest.(check int) "row returned" 1 (List.length r.Engines.Runtime.rows);
  Alcotest.(check int) "no cycles without simulator" 0
    (Memsim.Stats.total_cycles st)

let test_set_layout_roundtrip () =
  let db = make_db () in
  Db.set_layout db "emp" [ [ "dept" ]; [ "eid"; "salary" ] ];
  Alcotest.(check (list (list string))) "layout applied"
    [ [ "dept" ]; [ "eid"; "salary" ] ]
    (Db.layout_of db "emp");
  let r = Db.exec db "select eid from emp where dept = 'hr' order by eid" in
  Helpers.check_rows "data survives relayout"
    [ [| V.VInt 4 |]; [| V.VInt 6 |] ]
    r.Engines.Runtime.rows

let test_optimize_layout () =
  let db = Db.create () in
  Db.create_table db "wide"
    (List.init 12 (fun i -> (Printf.sprintf "c%02d" i, V.Int)))
    ();
  for row = 0 to 999 do
    Db.insert db "wide" (Array.init 12 (fun i -> V.VInt (row * i)))
  done;
  let layouts =
    Db.optimize_layout db
      [
        ("select c00 from wide where c01 < $1", 10.0);
        ("select sum(c02) s from wide", 1.0);
      ]
  in
  match List.assoc_opt "wide" layouts with
  | Some groups ->
      Alcotest.(check bool) "decomposed into >1 partition" true
        (List.length groups > 1)
  | None -> Alcotest.fail "no layout for wide"

let test_explain () =
  let db = make_db () in
  let s = Db.explain db "select eid from emp where dept = $1" in
  Alcotest.(check bool) "explain non-empty" true (String.length s > 50)

let test_create_table_with_layout () =
  let db = Db.create () in
  Db.create_table db "p"
    [ ("a", V.Int); ("b", V.Int); ("c", V.Int) ]
    ~layout:[ [ "a"; "c" ]; [ "b" ] ]
    ();
  let rel = Storage.Catalog.find (Db.catalog db) "p" in
  Alcotest.(check int) "two partitions" 2
    (Storage.Layout.n_partitions (Storage.Relation.layout rel))

let suite =
  [
    Alcotest.test_case "exec select" `Quick test_exec_select;
    Alcotest.test_case "exec group by" `Quick test_exec_group;
    Alcotest.test_case "exec params x engines" `Quick test_exec_params_and_engines;
    Alcotest.test_case "exec measured" `Quick test_exec_measured;
    Alcotest.test_case "unsimulated db" `Quick test_unsimulated_db;
    Alcotest.test_case "set layout" `Quick test_set_layout_roundtrip;
    Alcotest.test_case "optimize layout" `Quick test_optimize_layout;
    Alcotest.test_case "explain" `Quick test_explain;
    Alcotest.test_case "create table with layout" `Quick
      test_create_table_with_layout;
  ]
