(* Tests for expressions, plans, the planner and the SQL front end. *)

module V = Storage.Value
module Expr = Relalg.Expr
module Plan = Relalg.Plan
module Physical = Relalg.Physical
module Sql = Relalg.Sql

let eval ?(params = [||]) ?(col = fun _ -> V.Null) e = Expr.eval e ~params col

let test_expr_arith () =
  let e = Expr.Arith (Expr.Add, Expr.Const (V.VInt 2), Expr.Const (V.VInt 3)) in
  Alcotest.(check Helpers.value_testable) "2+3" (V.VInt 5) (eval e);
  let e =
    Expr.Arith (Expr.Div, Expr.Const (V.VInt 7), Expr.Const (V.VInt 2))
  in
  Alcotest.(check Helpers.value_testable) "int division" (V.VInt 3) (eval e);
  let e =
    Expr.Arith (Expr.Mul, Expr.Const (V.VFloat 1.5), Expr.Const (V.VInt 2))
  in
  Alcotest.(check Helpers.value_testable) "float contagion" (V.VFloat 3.0)
    (eval e)

let test_expr_div_by_zero () =
  let e = Expr.Arith (Expr.Div, Expr.Const (V.VInt 7), Expr.Const (V.VInt 0)) in
  Alcotest.(check Helpers.value_testable) "int div by zero yields 0" (V.VInt 0)
    (eval e)

let test_expr_null_propagation () =
  let e = Expr.Arith (Expr.Add, Expr.Const V.Null, Expr.Const (V.VInt 1)) in
  Alcotest.(check Helpers.value_testable) "null + 1 = null" V.Null (eval e);
  let e = Expr.Cmp (Expr.Eq, Expr.Const V.Null, Expr.Const V.Null) in
  Alcotest.(check Helpers.value_testable) "null = null is false"
    (V.VBool false) (eval e);
  let e = Expr.IsNull (Expr.Const V.Null) in
  Alcotest.(check Helpers.value_testable) "is null" (V.VBool true) (eval e)

let test_expr_boolean_logic () =
  let t = Expr.Const (V.VBool true) and f = Expr.Const (V.VBool false) in
  Alcotest.(check Helpers.value_testable) "and" (V.VBool false)
    (eval (Expr.And [ t; f ]));
  Alcotest.(check Helpers.value_testable) "or" (V.VBool true)
    (eval (Expr.Or [ f; t ]));
  Alcotest.(check Helpers.value_testable) "not" (V.VBool true)
    (eval (Expr.Not f))

let test_expr_params () =
  let e = Expr.Cmp (Expr.Lt, Expr.Param 1, Expr.Param 2) in
  Alcotest.(check Helpers.value_testable) "$1 < $2" (V.VBool true)
    (eval ~params:[| V.VInt 1; V.VInt 2 |] e);
  Alcotest.check_raises "unbound parameter"
    (Invalid_argument "Expr.eval: parameter $3 not bound") (fun () ->
      ignore (eval (Expr.Param 3)))

let test_expr_specialize_matches_eval () =
  let e =
    Expr.And
      [
        Expr.Cmp (Expr.Ge, Expr.Col 0, Expr.Param 1);
        Expr.Or
          [
            Expr.Like (Expr.Col 1, Expr.Const (V.VStr "a%"));
            Expr.Cmp (Expr.Ne, Expr.Col 0, Expr.Const (V.VInt 17));
          ];
      ]
  in
  let params = [| V.VInt 5 |] in
  let rows =
    [
      [| V.VInt 4; V.VStr "abc" |];
      [| V.VInt 5; V.VStr "xyz" |];
      [| V.VInt 17; V.VStr "zzz" |];
      [| V.VInt 17; V.VStr "all" |];
    ]
  in
  List.iter
    (fun row ->
      let col i = row.(i) in
      let direct = Expr.eval e ~params col in
      let compiled = Expr.specialize e ~params col in
      Alcotest.(check Helpers.value_testable) "specialize = eval" direct
        (compiled ()))
    rows

let test_expr_cols_and_remap () =
  let e =
    Expr.And
      [
        Expr.Cmp (Expr.Eq, Expr.Col 3, Expr.Col 1);
        Expr.Arith (Expr.Add, Expr.Col 3, Expr.Param 1);
      ]
  in
  Alcotest.(check (list int)) "cols" [ 1; 3 ] (Expr.cols e);
  let e' = Expr.remap e (fun i -> i + 10) in
  Alcotest.(check (list int)) "remapped" [ 11; 13 ] (Expr.cols e')

let test_default_selectivity () =
  let eq = Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Param 1) in
  Alcotest.(check (float 1e-9)) "eq" 0.01 (Expr.default_selectivity eq);
  let conj = Expr.And [ eq; eq ] in
  Alcotest.(check (float 1e-9)) "conjunction multiplies" 0.0001
    (Expr.default_selectivity conj)

let test_plan_schema_join () =
  let cat = Helpers.join_catalog () in
  let plan =
    Plan.Join
      {
        left = Plan.Scan "cust";
        right = Plan.Scan "ord";
        left_keys = [ 0 ];
        right_keys = [ 1 ];
      }
  in
  let schema = Plan.schema cat plan in
  Alcotest.(check int) "joined arity" 5 (Array.length schema);
  Alcotest.(check string) "first from left" "cid" schema.(0).Storage.Schema.name;
  Alcotest.(check string) "last from right" "total" schema.(4).Storage.Schema.name

let test_plan_schema_groupby () =
  let cat = Helpers.small_catalog () in
  let plan =
    Plan.Group_by
      {
        child = Plan.Scan "t";
        keys = [ (Expr.Col 1, "grp") ];
        aggs =
          [
            Relalg.Aggregate.make Relalg.Aggregate.Sum ~expr:(Expr.Col 2) "s";
            Relalg.Aggregate.make Relalg.Aggregate.Count_star "c";
          ];
      }
  in
  let schema = Plan.schema cat plan in
  Alcotest.(check (list string)) "output names" [ "grp"; "s"; "c" ]
    (Array.to_list (Array.map (fun (a : Storage.Schema.attr) -> a.Storage.Schema.name) schema))

let test_sql_parse_simple () =
  let cat = Helpers.small_catalog () in
  match Sql.parse cat "select id, name from t where grp = $1" with
  | Plan.Project (Plan.Select (Plan.Scan "t", pred), exprs) ->
      Alcotest.(check int) "two items" 2 (List.length exprs);
      Alcotest.(check (list int)) "pred col" [ 1 ] (Expr.cols pred)
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Plan.pp p)

let test_sql_parse_star () =
  let cat = Helpers.small_catalog () in
  match Sql.parse cat "select * from t" with
  | Plan.Scan "t" -> ()
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Plan.pp p)

let test_sql_case_insensitive () =
  let cat = Helpers.small_catalog () in
  match Sql.parse cat "SELECT ID FROM T WHERE GRP = 1" with
  | Plan.Project (Plan.Select (Plan.Scan "t", _), _) -> ()
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Plan.pp p)

let test_sql_aggregates_and_aliases () =
  let cat = Helpers.small_catalog () in
  let plan =
    Sql.parse cat
      "select grp, count(*) cnt, sum(amount) as total from t group by grp \
       order by total desc limit 3"
  in
  match plan with
  | Plan.Limit
      ( Plan.Sort
          { child = Plan.Project (Plan.Group_by { keys = gkeys; aggs; _ }, _); keys },
        3 ) ->
      Alcotest.(check int) "one group key" 1 (List.length gkeys);
      Alcotest.(check int) "two aggregates" 2 (List.length aggs);
      (match keys with
      | [ (2, Plan.Desc) ] -> ()
      | _ -> Alcotest.fail "expected sort on output column 2 desc")
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Plan.pp p)

let test_sql_group_by_alias () =
  let cat = Helpers.small_catalog () in
  let plan =
    Sql.parse cat
      "select (amount/10)*10 bucket, count(*) c from t group by bucket"
  in
  match plan with
  | Plan.Project (Plan.Group_by { keys; _ }, _) -> (
      match keys with
      | [ (Expr.Arith (Expr.Mul, _, _), "bucket") ] -> ()
      | _ -> Alcotest.fail "group key should be the aliased expression")
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Plan.pp p)

let test_sql_join_resolution () =
  let cat = Helpers.join_catalog () in
  let plan =
    Sql.parse cat
      "select region, sum(total) rev from cust join ord on cid = ocid group \
       by region"
  in
  match plan with
  | Plan.Project
      (Plan.Group_by { child = Plan.Join { left_keys; right_keys; _ }; _ }, _)
    ->
      Alcotest.(check (list int)) "left key" [ 0 ] left_keys;
      Alcotest.(check (list int)) "right key" [ 1 ] right_keys
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Plan.pp p)

let test_sql_join_pushdown () =
  let cat = Helpers.join_catalog () in
  let plan =
    Sql.parse cat
      "select oid from cust join ord on cid = ocid where region = $1 and \
       total > 50"
  in
  (* both predicates reference a single table and must be pushed below the
     join *)
  let rec has_select_above_join = function
    | Plan.Select (Plan.Join _, _) -> true
    | Plan.Select (c, _) | Plan.Project (c, _) | Plan.Limit (c, _) ->
        has_select_above_join c
    | Plan.Sort { child; _ } -> has_select_above_join child
    | Plan.Join { left; right; _ } ->
        has_select_above_join left || has_select_above_join right
    | Plan.Group_by { child; _ } -> has_select_above_join child
    | Plan.Scan _ | Plan.Insert _ | Plan.Update _ -> false
  in
  Alcotest.(check bool) "no residual select above join" false
    (has_select_above_join plan)

let test_sql_insert () =
  let cat = Helpers.small_catalog () in
  match Sql.parse cat "insert into t values (1, 2, 3, 'x', 0.5)" with
  | Plan.Insert { table = "t"; values } ->
      Alcotest.(check int) "five values" 5 (List.length values)
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Plan.pp p)

let test_sql_string_escapes () =
  let cat = Helpers.small_catalog () in
  match Sql.parse cat "select id from t where name = 'it''s'" with
  | Plan.Project (Plan.Select (_, Expr.Cmp (Expr.Eq, _, Expr.Const (V.VStr s))), _)
    ->
      Alcotest.(check string) "escaped quote" "it's" s
  | p -> Alcotest.fail (Format.asprintf "unexpected plan %a" Plan.pp p)

let test_sql_errors () =
  let cat = Helpers.small_catalog () in
  let expect_failure sql =
    match Sql.parse cat sql with
    | exception Sql.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "expected parse error for %s" sql)
  in
  expect_failure "select nope from t";
  expect_failure "select id from missing_table";
  expect_failure "select id from t where";
  expect_failure "delete from t";
  expect_failure "select id from t limit x";
  expect_failure "select id from t trailing garbage"

let test_planner_pushes_predicate () =
  let cat = Helpers.small_catalog () in
  let plan =
    Relalg.Planner.plan cat (Sql.parse cat "select id from t where grp = $1")
  in
  match plan with
  | Physical.Project { child = Physical.Scan { post = Some _; _ }; _ } -> ()
  | p -> Alcotest.fail (Format.asprintf "predicate not pushed: %a" Physical.pp p)

let test_planner_picks_index () =
  let cat = Helpers.small_catalog () in
  Storage.Catalog.create_index cat "t" ~name:"pk" ~kind:Storage.Index.Hash
    ~attrs:[ "id" ];
  let logical = Sql.parse cat "select * from t where id = $1" in
  (match Relalg.Planner.plan cat logical with
  | Physical.Scan { access = Physical.Index_eq { attrs = [ 0 ]; _ }; _ } -> ()
  | p -> Alcotest.fail (Format.asprintf "expected index scan: %a" Physical.pp p));
  match Relalg.Planner.plan ~use_indexes:false cat logical with
  | Physical.Scan { access = Physical.Full_scan; _ } -> ()
  | p -> Alcotest.fail (Format.asprintf "expected full scan: %a" Physical.pp p)

let test_planner_range_index () =
  let cat = Helpers.small_catalog () in
  Storage.Catalog.create_index cat "t" ~name:"rb" ~kind:Storage.Index.Rbtree
    ~attrs:[ "id" ];
  let logical = Sql.parse cat "select * from t where id >= $1 and id <= $2" in
  match Relalg.Planner.plan cat logical with
  | Physical.Scan { access = Physical.Index_range { attr = 0; _ }; _ } -> ()
  | p -> Alcotest.fail (Format.asprintf "expected range scan: %a" Physical.pp p)

let test_planner_estimate_override () =
  let cat = Helpers.small_catalog () in
  let logical = Sql.parse cat "select id from t where grp = $1" in
  let plan =
    Relalg.Planner.plan ~estimate:(fun _ -> Some 0.25) cat logical
  in
  match plan with
  | Physical.Project { child = Physical.Scan { sel; _ }; _ } ->
      Alcotest.(check (float 1e-9)) "override used" 0.25 sel
  | p -> Alcotest.fail (Format.asprintf "unexpected: %a" Physical.pp p)

let test_cardinality_estimates () =
  let cat = Helpers.small_catalog ~n:500 () in
  let plan =
    Relalg.Planner.plan ~estimate:(fun _ -> Some 0.1) cat
      (Sql.parse cat "select id from t where grp = $1")
  in
  Alcotest.(check (float 1.0)) "card = sel * n" 50.0
    (Physical.cardinality cat plan)

let suite =
  [
    Alcotest.test_case "expr arithmetic" `Quick test_expr_arith;
    Alcotest.test_case "expr div by zero" `Quick test_expr_div_by_zero;
    Alcotest.test_case "expr null propagation" `Quick test_expr_null_propagation;
    Alcotest.test_case "expr boolean logic" `Quick test_expr_boolean_logic;
    Alcotest.test_case "expr params" `Quick test_expr_params;
    Alcotest.test_case "expr specialize = eval" `Quick
      test_expr_specialize_matches_eval;
    Alcotest.test_case "expr cols/remap" `Quick test_expr_cols_and_remap;
    Alcotest.test_case "expr default selectivity" `Quick test_default_selectivity;
    Alcotest.test_case "plan join schema" `Quick test_plan_schema_join;
    Alcotest.test_case "plan groupby schema" `Quick test_plan_schema_groupby;
    Alcotest.test_case "sql simple select" `Quick test_sql_parse_simple;
    Alcotest.test_case "sql select star" `Quick test_sql_parse_star;
    Alcotest.test_case "sql case insensitive" `Quick test_sql_case_insensitive;
    Alcotest.test_case "sql aggregates/aliases" `Quick
      test_sql_aggregates_and_aliases;
    Alcotest.test_case "sql group by alias" `Quick test_sql_group_by_alias;
    Alcotest.test_case "sql join resolution" `Quick test_sql_join_resolution;
    Alcotest.test_case "sql join pushdown" `Quick test_sql_join_pushdown;
    Alcotest.test_case "sql insert" `Quick test_sql_insert;
    Alcotest.test_case "sql string escapes" `Quick test_sql_string_escapes;
    Alcotest.test_case "sql errors" `Quick test_sql_errors;
    Alcotest.test_case "planner predicate pushdown" `Quick
      test_planner_pushes_predicate;
    Alcotest.test_case "planner index selection" `Quick test_planner_picks_index;
    Alcotest.test_case "planner range index" `Quick test_planner_range_index;
    Alcotest.test_case "planner estimate override" `Quick
      test_planner_estimate_override;
    Alcotest.test_case "planner cardinality" `Quick test_cardinality_estimates;
  ]
