(* Tests for the Fig. 2c C-code renderer. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_example_query_code () =
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n:100 () in
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let code = Engines.C_emitter.emit cat (Workloads.Microbench.plan cat ~sel:0.01) in
  (* the structure of the paper's Fig. 2c *)
  Alcotest.(check bool) "struct per relation" true (contains code "struct R_t");
  Alcotest.(check bool) "A is its own array" true (contains code "int64_t A[N_R]");
  Alcotest.(check bool) "B..E share a partition struct" true
    (contains code "} p1[N_R]");
  Alcotest.(check bool) "single fused loop" true
    (contains code "for (int64_t tid");
  Alcotest.(check bool) "predicate inlined" true (contains code "R->A[");
  Alcotest.(check bool) "register accumulators" true (contains code "sum_B +=");
  Alcotest.(check bool) "no accumulator in a hash table" false
    (contains code "aggtable")

let test_group_by_code () =
  let cat = Helpers.small_catalog ~n:10 () in
  let plan =
    Relalg.Planner.plan cat
      (Relalg.Sql.parse cat "select grp, count(*) c from t group by grp")
  in
  let code = Engines.C_emitter.emit cat plan in
  Alcotest.(check bool) "hash aggregation" true (contains code "aggtable");
  Alcotest.(check bool) "update call" true (contains code ".update(")

let test_join_code () =
  let cat = Helpers.join_catalog ~n_orders:10 ~n_customers:5 () in
  let plan =
    Relalg.Planner.plan cat
      (Relalg.Sql.parse cat
         "select region, total from cust join ord on cid = ocid")
  in
  let code = Engines.C_emitter.emit cat plan in
  Alcotest.(check bool) "hash table declared" true (contains code "hashtable");
  Alcotest.(check bool) "build inserts" true (contains code ".insert(");
  Alcotest.(check bool) "probe loops" true (contains code ".lookup(");
  Alcotest.(check bool) "both structs emitted" true
    (contains code "struct cust_t" && contains code "struct ord_t")

let test_index_scan_code () =
  let cat = Helpers.small_catalog ~n:10 () in
  Storage.Catalog.create_index cat "t" ~name:"pk" ~kind:Storage.Index.Hash
    ~attrs:[ "id" ];
  let plan =
    Relalg.Planner.plan cat (Relalg.Sql.parse cat "select * from t where id = $1")
  in
  let code = Engines.C_emitter.emit cat plan in
  Alcotest.(check bool) "index lookup loop" true
    (contains code "t_index_lookup")

let suite =
  [
    Alcotest.test_case "example query (Fig 2c)" `Quick test_example_query_code;
    Alcotest.test_case "group by" `Quick test_group_by_code;
    Alcotest.test_case "hash join" `Quick test_join_code;
    Alcotest.test_case "index scan" `Quick test_index_scan_code;
  ]
