(* Layout advisor: walk through the paper's schema-decomposition machinery on
   the CNET product catalog — access descriptors, extended reasonable cuts,
   the BPi search, and a predicted-vs-measured comparison of the result.

   Run with: dune exec examples/layout_advisor.exe *)

let () =
  let hier = Memsim.Hierarchy.create () in
  let cn = Workloads.Cnet.build ~hier ~n_products:10_000 ~n_extra:54 () in
  let cat = cn.Workloads.Cnet.cat in
  let schema = Storage.Relation.schema (Storage.Catalog.find cat "products") in
  let workload = Workloads.Workload.plans ~use_indexes:true cn.Workloads.Cnet.queries in

  print_endline "== workload ==";
  List.iter
    (fun (q : Workloads.Workload.query) ->
      Printf.printf "  %-3s freq %6.0f  %s\n" q.Workloads.Workload.name
        q.Workloads.Workload.freq q.Workloads.Workload.sql)
    cn.Workloads.Cnet.queries;

  print_endline "\n== access descriptors per query ==";
  List.iter
    (fun (q : Workloads.Workload.query) ->
      let plan = q.Workloads.Workload.make_plan ~use_indexes:true in
      let _, descs = Costmodel.Emit.emit cat plan in
      Format.printf "  %s:@." q.Workloads.Workload.name;
      List.iter
        (fun d ->
          if List.length d.Costmodel.Emit.attrs <= 6 then
            Format.printf "    %a@." (Costmodel.Emit.pp_desc cat) d
          else
            Format.printf "    products{...%d attributes}:%s@."
              (List.length d.Costmodel.Emit.attrs)
              (match d.Costmodel.Emit.kind with
              | Costmodel.Emit.Seq -> "seq"
              | Costmodel.Emit.Seq_cond s -> Printf.sprintf "seq_cond(%g)" s
              | Costmodel.Emit.Rand -> "rand"))
        descs)
    cn.Workloads.Cnet.queries;

  print_endline "\n== extended reasonable cuts ==";
  let cuts = Layoutopt.Optimizer.cuts_for_table cat "products" workload in
  List.iter
    (fun c ->
      if List.length c <= 6 then
        Format.printf "  %a@." (Layoutopt.Cut.pp schema) c
      else Printf.printf "  {...%d attributes}\n" (List.length c))
    cuts;

  print_endline "\n== BPi search ==";
  let r = Layoutopt.Optimizer.optimize_table cat "products" workload in
  Printf.printf "  %d cost evaluations over %d nodes\n"
    r.Layoutopt.Optimizer.search.Layoutopt.Bpi.cost_evaluations
    r.Layoutopt.Optimizer.search.Layoutopt.Bpi.nodes_visited;
  Printf.printf "  estimated workload cycles: hybrid %.3g | row %.3g | column %.3g\n"
    r.Layoutopt.Optimizer.estimated_cost r.Layoutopt.Optimizer.row_cost
    r.Layoutopt.Optimizer.column_cost;
  let groups =
    Storage.Layout.to_name_groups schema r.Layoutopt.Optimizer.layout
  in
  print_endline "  chosen partitions:";
  List.iter
    (fun g ->
      if List.length g <= 8 then
        Printf.printf "    {%s}\n" (String.concat "," g)
      else Printf.printf "    {...%d attributes}\n" (List.length g))
    groups;

  print_endline "\n== predicted vs measured (weighted workload cycles) ==";
  let layouts =
    [
      ("row", Storage.Layout.row schema);
      ("column", Storage.Layout.column schema);
      ("hybrid", r.Layoutopt.Optimizer.layout);
    ]
  in
  List.iter
    (fun (name, layout) ->
      let predicted =
        Costmodel.Model.workload_cost ~layouts:[ ("products", layout) ] cat
          workload
      in
      Storage.Catalog.set_layout cat "products" layout;
      let measured =
        List.fold_left
          (fun acc (q : Workloads.Workload.query) ->
            let plan = q.Workloads.Workload.make_plan ~use_indexes:true in
            let _, st =
              Engines.Engine.run_measured Engines.Engine.Jit cat plan
                ~params:q.Workloads.Workload.params
            in
            acc
            +. (q.Workloads.Workload.freq
               *. float_of_int (Memsim.Stats.total_cycles st)))
          0.0 cn.Workloads.Cnet.queries
      in
      Printf.printf "  %-7s predicted %12.3g   measured %12.3g\n" name predicted
        measured)
    layouts;
  print_endline
    "\nThe hybrid keeps the hot point-lookup (C4) near row-store cost while \
     giving the\nanalytical queries column-store scans - the paper's Fig. 12."
