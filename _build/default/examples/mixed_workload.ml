(* Mixed OLTP/OLAP on the CH-benchmark: run the analytical queries and the
   transactional statements under row, column and optimizer-chosen hybrid
   storage, and report where each layout wins — the experiment family behind
   the paper's Fig. 11.

   Run with: dune exec examples/mixed_workload.exe *)

let () =
  let hier = Memsim.Hierarchy.create () in
  let ch = Workloads.Ch.build ~hier ~scale:0.1 () in
  let cat = ch.Workloads.Ch.cat in

  (* optimize for the full mix: analytics at frequency 1, transactions at
     frequency 100 *)
  let results = Layoutopt.Optimizer.optimize cat (Workloads.Ch.mixed_workload ch) in
  Printf.printf "optimizer decomposed %d tables:\n" (List.length results);
  List.iter
    (fun (r : Layoutopt.Optimizer.table_result) ->
      let rel = Storage.Catalog.find cat r.Layoutopt.Optimizer.table in
      Printf.printf "  %-12s -> %s\n" r.Layoutopt.Optimizer.table
        (Storage.Layout.kind_label r.Layoutopt.Optimizer.layout);
      ignore rel)
    results;
  print_newline ();

  let apply kind =
    List.iter
      (fun t ->
        let schema = Storage.Relation.schema (Storage.Catalog.find cat t) in
        let l =
          match kind with
          | `Row -> Storage.Layout.row schema
          | `Column -> Storage.Layout.column schema
          | `Hybrid -> (
              match
                List.find_opt
                  (fun (r : Layoutopt.Optimizer.table_result) ->
                    String.equal r.Layoutopt.Optimizer.table t)
                  results
              with
              | Some r -> r.Layoutopt.Optimizer.layout
              | None -> Storage.Layout.row schema)
        in
        Storage.Catalog.set_layout cat t l)
      Workloads.Ch.tables
  in

  let measure (q : Workloads.Workload.query) =
    let plan = q.Workloads.Workload.make_plan ~use_indexes:false in
    let _, st =
      Engines.Engine.run_measured Engines.Engine.Jit cat plan
        ~params:q.Workloads.Workload.params
    in
    Memsim.Stats.total_cycles st
  in

  let tab = Core.Texttab.create [ "query"; "row"; "column"; "hybrid"; "best" ] in
  let totals = Hashtbl.create 4 in
  let record kind q cycles =
    let k = Hashtbl.find_opt totals kind |> Option.value ~default:0.0 in
    Hashtbl.replace totals kind
      (k +. (float_of_int cycles *. q.Workloads.Workload.freq))
  in
  let cells = Hashtbl.create 32 in
  List.iter
    (fun kind ->
      apply kind;
      List.iter
        (fun q ->
          let c = measure q in
          Hashtbl.replace cells (q.Workloads.Workload.name, kind) c;
          record kind q c)
        (ch.Workloads.Ch.queries @ ch.Workloads.Ch.transactions))
    [ `Row; `Column; `Hybrid ];
  List.iter
    (fun (q : Workloads.Workload.query) ->
      let get kind = Hashtbl.find cells (q.Workloads.Workload.name, kind) in
      let row = get `Row and col = get `Column and hyb = get `Hybrid in
      let best =
        if row <= col && row <= hyb then "row"
        else if col <= row && col <= hyb then "column"
        else "hybrid"
      in
      Core.Texttab.row tab
        [
          q.Workloads.Workload.name;
          string_of_int row;
          string_of_int col;
          string_of_int hyb;
          best;
        ])
    (ch.Workloads.Ch.queries @ ch.Workloads.Ch.transactions);
  Core.Texttab.print tab;

  print_endline "frequency-weighted totals (cycles):";
  List.iter
    (fun (kind, name) ->
      Printf.printf "  %-7s %.4g\n" name
        (Option.value (Hashtbl.find_opt totals kind) ~default:0.0))
    [ (`Row, "row"); (`Column, "column"); (`Hybrid, "hybrid") ];
  print_endline
    "\nWith JiT compilation the analytical gain of decomposition is modest\n\
     (the paper's Fig. 11 finding); the hybrid's job is not to lose on the\n\
     transactional side.";
