examples/cost_explorer.ml: Core Costmodel Engines Format List Memsim Printf Storage Workloads
