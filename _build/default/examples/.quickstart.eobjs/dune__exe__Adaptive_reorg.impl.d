examples/adaptive_reorg.ml: Core Engines Format Layoutopt List Memsim Printf Relalg Storage Workloads
