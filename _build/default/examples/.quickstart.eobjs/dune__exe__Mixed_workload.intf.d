examples/mixed_workload.mli:
