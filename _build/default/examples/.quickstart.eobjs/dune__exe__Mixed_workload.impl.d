examples/mixed_workload.ml: Core Engines Hashtbl Layoutopt List Memsim Option Printf Storage String Workloads
