examples/layout_advisor.mli:
