examples/quickstart.ml: Core Engines Format List Memsim Printf Storage String
