examples/layout_advisor.ml: Costmodel Engines Format Layoutopt List Memsim Printf Storage String Workloads
