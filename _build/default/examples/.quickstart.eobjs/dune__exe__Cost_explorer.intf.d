examples/cost_explorer.mli:
