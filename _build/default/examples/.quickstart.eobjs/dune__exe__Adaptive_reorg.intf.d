examples/adaptive_reorg.mli:
