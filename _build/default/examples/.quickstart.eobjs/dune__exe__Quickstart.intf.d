examples/quickstart.mli:
