(* Adaptive reorganization: watch the layout monitor react to a workload
   shift — the paper's Section VII "online/adaptive reorganization" sketch,
   made concrete.

   Run with: dune exec examples/adaptive_reorg.exe *)

module V = Storage.Value

let () =
  let n = 60_000 in
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n () in
  let schema = Workloads.Microbench.schema in
  let monitor =
    Layoutopt.Adaptive.create ~window:96 ~check_every:24 ~min_benefit:0.02
      ~horizon:25.0 cat
  in
  (* the OLTP phase looks up tuples through a hash index, as a real
     transactional application would *)
  Storage.Catalog.create_index cat "R" ~name:"r_a" ~kind:Storage.Index.Hash
    ~attrs:[ "A" ];
  let point =
    Relalg.Planner.plan
      ~estimate:(fun _ -> Some (1.0 /. float_of_int n))
      cat
      (Relalg.Sql.parse cat "select * from R where A = $1")
  in
  let describe_layout () =
    let rel = Storage.Catalog.find cat "R" in
    Storage.Layout.kind_label (Storage.Relation.layout rel)
  in
  let phase name queries =
    Printf.printf "\n== %s (layout at start: %s) ==\n" name (describe_layout ());
    let cycles = ref 0 in
    List.iter
      (fun (plan, params) ->
        let _, st =
          Engines.Engine.run_measured Engines.Engine.Jit cat plan ~params
        in
        cycles := !cycles + Memsim.Stats.total_cycles st;
        List.iter
          (fun (e : Layoutopt.Adaptive.event) ->
            Format.printf "  >> monitor repartitioned %s: %a@."
              e.Layoutopt.Adaptive.table
              (Storage.Layout.pp schema)
              e.Layoutopt.Adaptive.new_layout)
          (Layoutopt.Adaptive.record monitor plan))
      queries;
    Printf.printf "  %d queries, %.2fM simulated cycles; layout now: %s\n"
      (List.length queries)
      (float_of_int !cycles /. 1e6)
      (describe_layout ())
  in
  let rng = Core.Rng.create 99 in
  phase "phase 1: OLTP point lookups"
    (List.init 96 (fun _ ->
         (point, [| V.VInt (Core.Rng.int rng Workloads.Microbench.domain) |])));
  phase "phase 2: analytical scans"
    (List.init 96 (fun _ ->
         ( Workloads.Microbench.plan cat ~sel:0.02,
           Workloads.Microbench.params ~sel:0.02 )));
  Printf.printf "\nreorganizations: %d; monitor observed %d queries total\n"
    (List.length (Layoutopt.Adaptive.reorganizations monitor))
    (Layoutopt.Adaptive.observed monitor)
