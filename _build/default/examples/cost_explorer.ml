(* Cost-model explorer: for the paper's example query, show
   (a) the generated C code per storage layout (Fig. 2c),
   (b) the emitted access-pattern program (Table Ib),
   (c) predicted vs simulated cycles across selectivities (Fig. 3 / Fig. 6).

   Run with: dune exec examples/cost_explorer.exe *)

let () =
  let hier = Memsim.Hierarchy.create () in
  let n = 100_000 in
  let cat = Workloads.Microbench.build ~hier ~n () in
  let schema = Workloads.Microbench.schema in

  let layouts =
    [
      ("row (NSM)", Storage.Layout.row schema);
      ("column (DSM)", Storage.Layout.column schema);
      ("hybrid (PDSM)", Workloads.Microbench.pdsm_layout);
    ]
  in

  print_endline "== the example query (paper Fig. 2a) ==";
  print_endline
    "  select sum(B), sum(C), sum(D), sum(E) from R where A < $1\n";

  (* (a) generated code on the PDSM layout *)
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  print_endline "== JiT code on the PDSM layout (cf. Fig. 2c) ==";
  print_string
    (Engines.C_emitter.emit cat (Workloads.Microbench.plan cat ~sel:0.01));
  print_newline ();

  (* (b) the pattern program *)
  print_endline "== access pattern program (cf. Table Ib) ==";
  List.iter
    (fun (name, layout) ->
      Storage.Catalog.set_layout cat "R" layout;
      let pattern, _ =
        Costmodel.Emit.emit cat (Workloads.Microbench.plan cat ~sel:0.01)
      in
      Format.printf "  %-14s %a@." name Costmodel.Pattern.pp pattern)
    layouts;
  print_newline ();

  (* (c) predicted vs simulated across selectivity and layout *)
  print_endline "== predicted vs simulated cycles (JiT engine) ==";
  let tab =
    Core.Texttab.create [ "layout"; "s"; "predicted"; "simulated"; "ratio" ]
  in
  List.iter
    (fun (name, layout) ->
      Storage.Catalog.set_layout cat "R" layout;
      List.iter
        (fun sel ->
          let plan = Workloads.Microbench.plan cat ~sel in
          let predicted = Costmodel.Model.query_cost cat plan in
          let _, st =
            Engines.Engine.run_measured Engines.Engine.Jit cat plan
              ~params:(Workloads.Microbench.params ~sel)
          in
          let simulated = float_of_int (Memsim.Stats.total_cycles st) in
          Core.Texttab.row tab
            [
              name;
              Printf.sprintf "%.3f" sel;
              Printf.sprintf "%.0f" predicted;
              Printf.sprintf "%.0f" simulated;
              Printf.sprintf "%.2f" (predicted /. simulated);
            ])
        [ 0.001; 0.01; 0.1; 0.5; 1.0 ])
    layouts;
  Core.Texttab.print tab;
  print_endline
    "The model is built from schema, layout and selectivities only - it \
     never reads\nthe data - yet tracks the simulator within tens of percent \
     across three layouts\nand three orders of magnitude of selectivity."
