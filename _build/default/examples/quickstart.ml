(* Quickstart: create a database, load a table, run SQL on the JiT engine,
   inspect the simulated memory-hierarchy cost, and switch layouts.

   Run with: dune exec examples/quickstart.exe *)

module V = Storage.Value
module Db = Core.Db

let () =
  (* a database with an attached memory-hierarchy simulator (Table III) *)
  let db = Db.create () in

  Db.create_table db "movies"
    [
      ("id", V.Int);
      ("title", V.Varchar 24);
      ("year", V.Int);
      ("rating", V.Float);
      ("votes", V.Int);
    ]
    ();

  let rng = Core.Rng.create 2024 in
  for i = 0 to 9_999 do
    Db.insert db "movies"
      [|
        V.VInt i;
        V.VStr (Printf.sprintf "movie_%05d" i);
        V.VInt (Core.Rng.int_in rng 1950 2012);
        V.VFloat (float_of_int (Core.Rng.int_in rng 10 100) /. 10.0);
        V.VInt (Core.Rng.int_in rng 1 1_000_000);
      |]
  done;

  (* 1. plain SQL *)
  print_endline "== movies per decade (JiT engine) ==";
  let result =
    Db.exec db
      "select (year/10)*10 decade, count(*) n, avg(rating) avg_rating from \
       movies group by decade order by decade"
  in
  Format.printf "%a@." Engines.Runtime.pp_result result;

  (* 2. the same query, measured *)
  let _, stats =
    Db.exec_measured db
      "select count(*) n from movies where year >= $1 and year <= $2"
      ~params:[| V.VInt 1990; V.VInt 1999 |]
  in
  Printf.printf "scan cost: %d simulated cycles (%d memory, %d cpu)\n\n"
    (Memsim.Stats.total_cycles stats)
    stats.Memsim.Stats.mem_cycles stats.Memsim.Stats.cpu_cycles;

  (* 3. what the cost model thinks: plan, access pattern, estimate *)
  print_endline "== explain ==";
  print_endline
    (Db.explain db "select sum(votes) v from movies where rating >= $1");
  print_newline ();

  (* 4. storage layouts are first-class: compare row store, column store and
     a hand-chosen hybrid for this mixed workload *)
  print_endline "== cycles by layout (scan-heavy query) ==";
  let layouts =
    [
      ("row", [ [ "id"; "title"; "year"; "rating"; "votes" ] ]);
      ("column", [ [ "id" ]; [ "title" ]; [ "year" ]; [ "rating" ]; [ "votes" ] ]);
      ("hybrid", [ [ "year"; "rating" ]; [ "id"; "title"; "votes" ] ]);
    ]
  in
  List.iter
    (fun (name, groups) ->
      Db.set_layout db "movies" groups;
      let _, st =
        Db.exec_measured db
          "select avg(rating) r from movies where year = $1"
          ~params:[| V.VInt 2001 |]
      in
      Printf.printf "  %-7s %8d cycles\n" name (Memsim.Stats.total_cycles st))
    layouts;
  print_newline ();

  (* 5. or let the optimizer pick the layout from a workload *)
  print_endline "== optimizer-chosen layout ==";
  let chosen =
    Db.optimize_layout db
      [
        ("select avg(rating) r from movies where year = $1", 100.0);
        ("select * from movies where id = $1", 10.0);
      ]
  in
  List.iter
    (fun (table, groups) ->
      Printf.printf "  %s: %s\n" table
        (String.concat " | " (List.map (String.concat ",") groups)))
    chosen
