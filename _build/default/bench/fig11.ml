(* Fig. 11: CH-benchmark analytical queries on row / column / hybrid storage
   (JiT engine).  The paper reports seconds; we report simulated cycles and
   the equivalent seconds at the paper's 2.67 GHz clock. *)

let run () =
  Common.header "Fig. 11 — CH-benchmark queries (JiT), row/column/hybrid";
  let scale = Common.scale_env "MRDB_CH_SCALE" 0.2 in
  let hier = Memsim.Hierarchy.create () in
  let ch = Workloads.Ch.build ~hier ~scale () in
  let cat = ch.Workloads.Ch.cat in
  let hybrid =
    Layoutopt.Optimizer.optimize cat (Workloads.Ch.mixed_workload ch)
  in
  let apply kind =
    List.iter
      (fun t ->
        let schema = Storage.Relation.schema (Storage.Catalog.find cat t) in
        let l =
          match kind with
          | `Row -> Storage.Layout.row schema
          | `Column -> Storage.Layout.column schema
          | `Hybrid -> (
              match
                List.find_opt
                  (fun (r : Layoutopt.Optimizer.table_result) ->
                    String.equal r.Layoutopt.Optimizer.table t)
                  hybrid
              with
              | Some r -> r.Layoutopt.Optimizer.layout
              | None -> Storage.Layout.row schema)
        in
        Storage.Catalog.set_layout cat t l)
      Workloads.Ch.tables
  in
  let tab =
    Common.Texttab.create [ "query"; "row"; "column"; "hybrid"; "col/row" ]
  in
  let cells = Hashtbl.create 32 in
  List.iter
    (fun kind ->
      apply kind;
      List.iter
        (fun (q : Workloads.Workload.query) ->
          let c = Common.measure_query Common.run_jit cat q ~use_indexes:false in
          Hashtbl.replace cells (q.Workloads.Workload.name, kind) c)
        ch.Workloads.Ch.queries)
    [ `Row; `Column; `Hybrid ];
  List.iter
    (fun (q : Workloads.Workload.query) ->
      let get kind =
        Option.value
          (Hashtbl.find_opt cells (q.Workloads.Workload.name, kind))
          ~default:0
      in
      let row = get `Row and col = get `Column and hyb = get `Hybrid in
      Common.Texttab.row tab
        [
          q.Workloads.Workload.name;
          Common.pow10_label (float_of_int row);
          Common.pow10_label (float_of_int col);
          Common.pow10_label (float_of_int hyb);
          Printf.sprintf "%.2f" (float_of_int col /. float_of_int (max 1 row));
        ])
    ch.Workloads.Ch.queries;
  Common.Texttab.print tab;
  Common.note
    "expected shape: with JiT compilation the row store leaves little on \
     the table — full decomposition buys only ~tens of percent, not orders \
     of magnitude (the paper's surprising Fig. 11 finding)"
