(* Extension bench: vectorization vs. compilation (Sompolski et al., cited
   as [32] in the paper).  The vectorized engine processes 1024-tuple
   vectors through cache-resident intermediates, removing bulk processing's
   high-selectivity materialization penalty without generating code. *)

let selectivities = [ 0.001; 0.01; 0.1; 0.5; 1.0 ]

let run () =
  Common.header
    "Extension — vectorization vs. compilation (example query, PDSM, cycles)";
  let n = 200_000 in
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n () in
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let tab =
    Common.Texttab.create
      ("engine" :: List.map (fun s -> Printf.sprintf "s=%g" s) selectivities)
  in
  List.iter
    (fun engine ->
      let cells =
        List.map
          (fun sel ->
            let plan = Workloads.Microbench.plan cat ~sel in
            Common.pow10_label
              (float_of_int
                 (Common.measure engine cat plan
                    (Workloads.Microbench.params ~sel))))
          selectivities
      in
      Common.Texttab.row tab (Engines.Engine.name engine :: cells))
    [ Engines.Engine.Bulk; Engines.Engine.Vectorized; Engines.Engine.Jit ];
  Common.Texttab.print tab;
  Common.note
    "expected shape: all three agree at low selectivity; at high selectivity \
     bulk pays full-column materialization, vectorized stays close to jit \
     (its intermediates are cache resident), and jit stays lowest (no \
     intermediates at all)"
