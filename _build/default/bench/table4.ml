(* Table IV: decomposition of the ADRC table driven by Q1 and Q3. *)

let run () =
  Common.header "Table IV — decomposition of the ADRC table";
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale:0.25 () in
  let cat = sd.Workloads.Sap_sd.cat in
  let schema = Storage.Relation.schema (Storage.Catalog.find cat "ADRC") in
  let wl =
    Workloads.Workload.plans ~use_indexes:false (Workloads.Sap_sd.adrc_queries sd)
  in
  List.iter
    (fun (q : Workloads.Workload.query) ->
      Common.note "%s: %s" q.Workloads.Workload.name q.Workloads.Workload.sql)
    (Workloads.Sap_sd.adrc_queries sd);
  let cuts = Layoutopt.Optimizer.cuts_for_table cat "ADRC" wl in
  Printf.printf "\n  (b) extended reasonable cuts:\n";
  List.iter
    (fun c -> Format.printf "      %a@." (Layoutopt.Cut.pp schema) c)
    cuts;
  let r =
    Layoutopt.Optimizer.optimize_table
      ~algorithm:(Layoutopt.Optimizer.Bpi 0.002) cat "ADRC" wl
  in
  Format.printf "@.  (c) BPi solution: %a@." (Storage.Layout.pp schema)
    r.Layoutopt.Optimizer.layout;
  Common.note "estimated workload cost: hybrid %.0f / row %.0f / column %.0f"
    r.Layoutopt.Optimizer.estimated_cost r.Layoutopt.Optimizer.row_cost
    r.Layoutopt.Optimizer.column_cost;
  Common.note "search: %d cost evaluations, %d nodes"
    r.Layoutopt.Optimizer.search.Layoutopt.Bpi.cost_evaluations
    r.Layoutopt.Optimizer.search.Layoutopt.Bpi.nodes_visited;
  Common.note
    "paper's solution: {NAME1},{NAME2},{KUNNR},{ADDRNUMBER,NAME_CO},{*}"
