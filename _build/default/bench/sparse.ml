(* Extension bench: sparse key-value storage for wide, sparsely populated
   relations — the paper's Section VII suggestion ("storage as dense
   key-value lists ... may save storage space and processing effort").
   A CNET-like catalog stores its ~5%-filled optional attributes either
   inline (PDSM partitions) or as dense (tid, value) pair lists. *)

module V = Storage.Value

let n_extras = 60
let fill_prob = 0.05

let schema =
  Storage.Schema.make_nullable "catalog"
    ([
       ("id", V.Int, false);
       ("category", V.Varchar 16, false);
       ("price", V.Int, false);
     ]
    @ List.init n_extras (fun i ->
          (Printf.sprintf "opt_%02d" i, V.Int, true)))

let build ~sparse n =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let fixed = [ [ 0; 1; 2 ] ] in
  let layout, encodings =
    if sparse then
      (* each sparse attribute lives alone next to a key-value pair list *)
      ( Storage.Layout.of_indices schema
          (fixed @ List.init n_extras (fun i -> [ 3 + i ])),
        List.init n_extras (fun i -> (3 + i, Storage.Encoding.Sparse)) )
    else
      (* dense PDSM: the optional attributes share one wide partition *)
      ( Storage.Layout.of_indices schema
          (fixed @ [ List.init n_extras (fun i -> 3 + i) ]),
        [] )
  in
  let rel = Storage.Catalog.add ~encodings cat schema layout in
  let rng = Mrdb_util.Rng.create 4242 in
  Storage.Relation.load rel ~n (fun ~row ->
      Array.init (3 + n_extras) (fun i ->
          match i with
          | 0 -> V.VInt row
          | 1 -> V.VStr (Printf.sprintf "cat%02d" (Mrdb_util.Rng.int rng 25))
          | 2 -> V.VInt (10 * Mrdb_util.Rng.int_in rng 1 100)
          | _ ->
              if Mrdb_util.Rng.bool rng fill_prob then
                V.VInt (Mrdb_util.Rng.int rng 100000)
              else V.Null));
  cat

let run () =
  Common.header
    "Extension — sparse key-value storage for optional attributes";
  let n = 20_000 in
  let dense = build ~sparse:false n in
  let sparse = build ~sparse:true n in
  let bytes cat =
    Storage.Relation.storage_bytes (Storage.Catalog.find cat "catalog")
  in
  Common.note "storage: dense %s B, sparse %s B (%.1fx smaller)"
    (Common.pow10_label (float_of_int (bytes dense)))
    (Common.pow10_label (float_of_int (bytes sparse)))
    (float_of_int (bytes dense) /. float_of_int (bytes sparse));
  let queries =
    [
      ("dense-column scan", "select category, count(*) c from catalog group by category", [||]);
      ( "aggregate one sparse attribute",
        "select count(opt_07) c, sum(opt_07) s from catalog",
        [||] );
      ( "point select *",
        "select * from catalog where id = $1",
        [| V.VInt (n / 2) |] );
    ]
  in
  let tab = Common.Texttab.create [ "query"; "dense"; "sparse" ] in
  List.iter
    (fun (label, sql, params) ->
      let cycles cat =
        let plan = Relalg.Planner.plan cat (Relalg.Sql.parse cat sql) in
        let _, st =
          Engines.Engine.run_measured Engines.Engine.Jit cat plan ~params
        in
        Memsim.Stats.total_cycles st
      in
      Common.Texttab.row tab
        [
          label;
          Common.pow10_label (float_of_int (cycles dense));
          Common.pow10_label (float_of_int (cycles sparse));
        ])
    queries;
  Common.Texttab.print tab;
  Common.note
    "expected shape: storage shrinks by the fill factor; scans of dense \
     attributes are unaffected; touching the sparse attributes trades \
     inline width for per-tuple pair-list searches, so full-tuple \
     reconstruction gets slower - the trade-off behind the paper's \
     suggestion to keep such storage for genuinely sparse data"
