(* Extension bench: online/adaptive reorganization (the paper's Section VII
   direction).  A workload over the microbenchmark table shifts from
   OLTP-style point lookups (favouring the row store) to analytical scans
   (favouring decomposition); the adaptive monitor observes the shift and
   repartitions once the predicted saving amortizes the copy cost. *)

module V = Storage.Value

let run () =
  Common.header "Extension — adaptive layout reorganization under a shifting workload";
  let n = 100_000 in
  let phase_len = 200 in
  let make_queries cat =
    let point =
      Relalg.Planner.plan
        ~estimate:(fun _ -> Some (1.0 /. float_of_int n))
        cat
        (Relalg.Sql.parse cat "select * from R where A = $1")
    in
    let scan = Workloads.Microbench.plan cat ~sel:0.02 in
    (point, scan)
  in
  let run_workload ~adaptive_on =
    let hier = Memsim.Hierarchy.create () in
    let cat = Workloads.Microbench.build ~hier ~n () in
    let point, scan = make_queries cat in
    let monitor =
      Layoutopt.Adaptive.create ~window:128 ~check_every:32 ~min_benefit:0.02
        ~horizon:20.0 cat
    in
    let total = ref 0 in
    let events = ref [] in
    let execute plan params =
      let _, st = Engines.Engine.run_measured Engines.Engine.Jit cat plan ~params in
      total := !total + Memsim.Stats.total_cycles st;
      if adaptive_on then begin
        (* repartitioning runs untraced; charge its model cost explicitly *)
        let evs = Layoutopt.Adaptive.record monitor plan in
        List.iter
          (fun (e : Layoutopt.Adaptive.event) ->
            total :=
              !total
              + int_of_float (Layoutopt.Adaptive.copy_cost cat e.Layoutopt.Adaptive.table);
            events := e :: !events)
          evs
      end
    in
    (* phase 1: OLTP point lookups *)
    for i = 1 to phase_len do
      execute point [| V.VInt (i * 37 mod Workloads.Microbench.domain) |]
    done;
    (* phase 2: analytical scans *)
    for _ = 1 to phase_len do
      execute scan (Workloads.Microbench.params ~sel:0.02)
    done;
    (!total, List.rev !events, cat)
  in
  let static_cycles, _, _ = run_workload ~adaptive_on:false in
  let adaptive_cycles, events, cat = run_workload ~adaptive_on:true in
  Common.note "static row layout : %s cycles"
    (Common.pow10_label (float_of_int static_cycles));
  Common.note "adaptive          : %s cycles (%.2fx)"
    (Common.pow10_label (float_of_int adaptive_cycles))
    (float_of_int static_cycles /. float_of_int adaptive_cycles);
  let schema = Storage.Relation.schema (Storage.Catalog.find cat "R") in
  List.iter
    (fun (e : Layoutopt.Adaptive.event) ->
      Format.printf "  reorganized %s: %s -> %s (net saving %s cycles)@."
        e.Layoutopt.Adaptive.table
        (Storage.Layout.kind_label e.Layoutopt.Adaptive.old_layout)
        (Storage.Layout.kind_label e.Layoutopt.Adaptive.new_layout)
        (Common.pow10_label e.Layoutopt.Adaptive.predicted_saving);
      ignore schema)
    events;
  Common.note
    "expected shape: the monitor leaves the row store alone during the \
     point-lookup phase, then decomposes the table once scans dominate, \
     beating the static layout even after paying the copy cost"
