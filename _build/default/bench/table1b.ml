(* Table Ib: the access pattern program of the example query. *)

let run () =
  Common.header "Table Ib — access pattern of the example query (s = 0.01)";
  let hier = Memsim.Hierarchy.create () in
  let n = 200_000 in
  let cat = Workloads.Microbench.build ~hier ~n () in
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let plan = Workloads.Microbench.plan cat ~sel:0.01 in
  let pattern, descs = Costmodel.Emit.emit cat plan in
  Format.printf "  %a@." Costmodel.Pattern.pp pattern;
  Format.printf "  descriptors: %a@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (Costmodel.Emit.pp_desc cat))
    descs;
  Common.note
    "paper (25M tuples): s_trav(26214400,4) . rr_acc(26214400,16,262144) . \
     rr_acc(1,16,262144); with the s_trav_cr extension the middle atom \
     becomes s_trav_cr([B..E], s=0.01)"
