(* Fig. 10: queries 6-8 with and without indexes on each layout (JiT
   engine).  Q6 measures index maintenance on insert; Q7/Q8 replace scans
   with hash / RB-tree lookups. *)

let run () =
  Common.header "Fig. 10 — indexed vs. unindexed Q6-Q8 (cycles, JiT)";
  let scale = Common.scale_env "MRDB_SD_SCALE" 0.5 in
  let layout_kinds = [ ("row", `Row); ("column", `Column); ("hybrid", `Hybrid) ] in
  let tab =
    Common.Texttab.create
      ("query/config"
      :: List.map (fun (n, _) -> n) layout_kinds)
  in
  (* build twice: once bare, once with indexes, so maintenance costs show *)
  let run_config ~indexed =
    let hier = Memsim.Hierarchy.create () in
    let sd = Workloads.Sap_sd.build ~hier ~scale () in
    let cat = sd.Workloads.Sap_sd.cat in
    if indexed then Workloads.Sap_sd.create_indexes sd;
    let workload =
      Workloads.Workload.plans ~use_indexes:false sd.Workloads.Sap_sd.queries
    in
    let hybrid = Layoutopt.Optimizer.optimize cat workload in
    let apply kind =
      List.iter
        (fun t ->
          let schema = Storage.Relation.schema (Storage.Catalog.find cat t) in
          let l =
            match kind with
            | `Row -> Storage.Layout.row schema
            | `Column -> Storage.Layout.column schema
            | `Hybrid -> (
                match
                  List.find_opt
                    (fun (r : Layoutopt.Optimizer.table_result) ->
                      String.equal r.Layoutopt.Optimizer.table t)
                    hybrid
                with
                | Some r -> r.Layoutopt.Optimizer.layout
                | None -> Storage.Layout.row schema)
          in
          Storage.Catalog.set_layout cat t l)
        Workloads.Sap_sd.tables
    in
    fun qname kind ->
      apply kind;
      let q = Workloads.Sap_sd.query sd qname in
      Common.measure_query Common.run_jit cat q ~use_indexes:indexed
  in
  let unindexed = run_config ~indexed:false in
  let indexed = run_config ~indexed:true in
  List.iter
    (fun qname ->
      List.iter
        (fun (label, f) ->
          let cells =
            List.map
              (fun (_, kind) ->
                Common.pow10_label (float_of_int (f qname kind)))
              layout_kinds
          in
          Common.Texttab.row tab
            (Printf.sprintf "%s %s" qname label :: cells))
        [ ("unindexed", unindexed); ("indexed", indexed) ])
    [ "Q6"; "Q7"; "Q8" ];
  Common.Texttab.print tab;
  Common.note
    "expected shape: Q7/Q8 gain orders of magnitude from indexes (more on \
     row than column storage, since tuple reconstruction then dominates); \
     Q6's index-maintenance penalty is small"
