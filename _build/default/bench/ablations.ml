(* Ablations for the design choices DESIGN.md calls out:
   (a) prefetch-aware cost function (Eq. 5/6) vs. the original additive one;
   (b) extended vs. classic reasonable cuts in the optimizer;
   (c) modeling conditional reads as s_trav_cr vs. rr_acc. *)

let mean_rel_err pairs =
  let n = List.length pairs in
  if n = 0 then 0.0
  else
    List.fold_left
      (fun acc (est, act) ->
        acc +. (Float.abs (est -. act) /. Float.max 1.0 act))
      0.0 pairs
    /. float_of_int n

let cost_function_ablation () =
  Common.header
    "Ablation (a) — prefetch-aware vs. additive cost function (example query)";
  let n = 200_000 in
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n () in
  Storage.Catalog.set_layout cat "R" Workloads.Microbench.pdsm_layout;
  let sels = [ 0.001; 0.01; 0.05; 0.1; 0.3; 0.5; 1.0 ] in
  let tab =
    Common.Texttab.create [ "s"; "simulated"; "prefetch-aware"; "additive" ]
  in
  let aware = ref [] and additive = ref [] in
  List.iter
    (fun sel ->
      let plan = Workloads.Microbench.plan cat ~sel in
      let actual =
        float_of_int
          (Common.measure Common.run_jit cat plan
             (Workloads.Microbench.params ~sel))
      in
      let est_aware = Costmodel.Model.query_cost cat plan in
      let est_add = Costmodel.Model.query_cost ~additive:true cat plan in
      aware := (est_aware, actual) :: !aware;
      additive := (est_add, actual) :: !additive;
      Common.Texttab.row tab
        [
          Printf.sprintf "%.3f" sel;
          Common.pow10_label actual;
          Common.pow10_label est_aware;
          Common.pow10_label est_add;
        ])
    sels;
  Common.Texttab.print tab;
  Common.note "mean relative error: prefetch-aware %.2f, additive %.2f"
    (mean_rel_err !aware) (mean_rel_err !additive);
  Common.note
    "note: on this sequential-scan-dominated query the additive function's \
     overestimate of prefetched misses happens to offset other \
     approximations (our simulator charges prefetched lines the LLC access \
     latency); the prefetch-aware function is the conservative lower bound \
     and, unlike the additive one, distinguishes miss kinds for mixed \
     patterns (ablation c / Fig. 6)"

let cuts_ablation () =
  Common.header "Ablation (b) — extended vs. classic reasonable cuts";
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale:0.25 () in
  let cat = sd.Workloads.Sap_sd.cat in
  let wl =
    Workloads.Workload.plans ~use_indexes:false (Workloads.Sap_sd.adrc_queries sd)
  in
  let schema = Storage.Relation.schema (Storage.Catalog.find cat "ADRC") in
  List.iter
    (fun (label, extended) ->
      let r =
        Layoutopt.Optimizer.optimize_table ~extended
          ~algorithm:(Layoutopt.Optimizer.Bpi 0.002) cat "ADRC" wl
      in
      Format.printf "  %-8s cost %.0f  layout %a@." label
        r.Layoutopt.Optimizer.estimated_cost (Storage.Layout.pp schema)
        r.Layoutopt.Optimizer.layout)
    [ ("classic", false); ("extended", true) ];
  Common.note
    "classic cuts cannot separate NAME1 from NAME2 (same query), so their \
     best layout costs more"

let strav_cr_ablation () =
  Common.header "Ablation (c) — s_trav_cr vs. rr_acc for conditional reads";
  let params = Memsim.Params.nehalem in
  let n = 400_000 and w = 32 in
  let tab =
    Common.Texttab.create
      [ "s"; "s_trav_cr total (lines)"; "rr_acc total (lines)" ]
  in
  List.iter
    (fun s ->
      let lines = float_of_int (n * w / 64) in
      let cr =
        Costmodel.Miss_model.atom_misses params
          (Costmodel.Pattern.S_trav_cr { n; w; u = w; s })
      in
      let r = int_of_float (s *. float_of_int n) in
      let rr =
        Costmodel.Miss_model.atom_misses params
          (Costmodel.Pattern.Rr_acc { n; w; u = w; r = max 1 r })
      in
      Common.Texttab.row tab
        [
          Printf.sprintf "%.3f" s;
          Printf.sprintf "%.3f"
            (cr.Costmodel.Miss_model.levels.(2).Costmodel.Miss_model.total
            /. lines);
          Printf.sprintf "%.3f"
            (rr.Costmodel.Miss_model.levels.(2).Costmodel.Miss_model.total
            /. lines);
        ])
    [ 0.01; 0.05; 0.1; 0.3; 0.5; 1.0 ];
  Common.Texttab.print tab

let run () =
  cost_function_ablation ();
  cuts_ablation ();
  strav_cr_ablation ()
