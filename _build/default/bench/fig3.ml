(* Fig. 3: the example select-and-aggregate query under every combination of
   processing model (Volcano / Bulk / JiT) and storage model (NSM / DSM /
   PDSM), over selectivity.  The paper runs 25M tuples; we default to 200k
   (simulated cycles scale linearly; crossovers are size-independent).
   Override with MRDB_FIG3_N. *)

let selectivities = [ 0.0001; 0.001; 0.01; 0.1; 0.5; 1.0 ]

let layouts () =
  [
    ("row", Storage.Layout.row Workloads.Microbench.schema);
    ("column", Storage.Layout.column Workloads.Microbench.schema);
    ("pdsm", Workloads.Microbench.pdsm_layout);
  ]

let engines = [ Common.run_volcano; Common.run_bulk; Common.run_jit ]

let run () =
  Common.header
    "Fig. 3 — Costs of the example query (cycles; rows = engine x layout)";
  let n =
    int_of_float (Common.scale_env "MRDB_FIG3_N" 200_000.0)
  in
  Common.note "n = %d tuples, 16 int attributes (paper: 25M)" n;
  let hier = Memsim.Hierarchy.create () in
  let cat = Workloads.Microbench.build ~hier ~n () in
  let tab =
    Common.Texttab.create
      ("engine/layout"
      :: List.map (fun s -> Printf.sprintf "s=%g" s) selectivities)
  in
  List.iter
    (fun (lname, layout) ->
      Storage.Catalog.set_layout cat "R" layout;
      List.iter
        (fun engine ->
          let cells =
            List.map
              (fun sel ->
                let plan = Workloads.Microbench.plan cat ~sel in
                let params = Workloads.Microbench.params ~sel in
                Common.pow10_label
                  (float_of_int (Common.measure engine cat plan params)))
              selectivities
          in
          Common.Texttab.row tab
            (Printf.sprintf "%s/%s" (Engines.Engine.name engine) lname :: cells))
        engines)
    (layouts ());
  Common.Texttab.print tab;
  Common.note
    "expected shape: volcano flat and ~2 orders above jit; bulk close to jit \
     at low s, worse at high s (materialization); jit/pdsm lowest overall"
