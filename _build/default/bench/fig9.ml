(* Fig. 9: SAP-SD queries 1-12, HyPer (JiT) vs. HYRISE-style processing,
   each on row / column / hybrid storage (cycles, log scale in the paper). *)

let run () =
  Common.header "Fig. 9 — SAP-SD: JiT (HyPer) vs. HYRISE on three layouts";
  let scale = Common.scale_env "MRDB_SD_SCALE" 0.5 in
  let hier = Memsim.Hierarchy.create () in
  let sd = Workloads.Sap_sd.build ~hier ~scale () in
  let cat = sd.Workloads.Sap_sd.cat in
  let queries = sd.Workloads.Sap_sd.queries in
  let workload = Workloads.Workload.plans ~use_indexes:false queries in
  (* the hybrid layouts come from the optimizer over the full workload *)
  let hybrid = Layoutopt.Optimizer.optimize cat workload in
  let layout_for kind table =
    let schema = Storage.Relation.schema (Storage.Catalog.find cat table) in
    match kind with
    | `Row -> Storage.Layout.row schema
    | `Column -> Storage.Layout.column schema
    | `Hybrid -> (
        match
          List.find_opt
            (fun (r : Layoutopt.Optimizer.table_result) ->
              String.equal r.Layoutopt.Optimizer.table table)
            hybrid
        with
        | Some r -> r.Layoutopt.Optimizer.layout
        | None -> Storage.Layout.row schema)
  in
  let tab =
    Common.Texttab.create
      [
        "query"; "jit/row"; "jit/column"; "jit/hybrid"; "hyrise/row";
        "hyrise/column"; "hyrise/hybrid";
      ]
  in
  let results = Hashtbl.create 64 in
  List.iter
    (fun kind ->
      List.iter
        (fun t -> Storage.Catalog.set_layout cat t (layout_for kind t))
        Workloads.Sap_sd.tables;
      List.iter
        (fun engine ->
          List.iter
            (fun (q : Workloads.Workload.query) ->
              let c = Common.measure_query engine cat q ~use_indexes:false in
              Hashtbl.replace results
                (q.Workloads.Workload.name, Engines.Engine.name engine, kind)
                c)
            queries)
        [ Common.run_jit; Common.run_hyrise ])
    [ `Row; `Column; `Hybrid ];
  List.iter
    (fun (q : Workloads.Workload.query) ->
      let name = q.Workloads.Workload.name in
      let cell engine kind =
        match Hashtbl.find_opt results (name, engine, kind) with
        | Some c -> Common.pow10_label (float_of_int c)
        | None -> "-"
      in
      Common.Texttab.row tab
        [
          name;
          cell "jit" `Row;
          cell "jit" `Column;
          cell "jit" `Hybrid;
          cell "hyrise" `Row;
          cell "hyrise" `Column;
          cell "hyrise" `Hybrid;
        ])
    queries;
  Common.Texttab.print tab;
  (* summary factor *)
  let geo l =
    exp (List.fold_left (fun a x -> a +. log x) 0.0 l /. float_of_int (List.length l))
  in
  let ratios =
    List.filter_map
      (fun (q : Workloads.Workload.query) ->
        match
          ( Hashtbl.find_opt results (q.Workloads.Workload.name, "jit", `Hybrid),
            Hashtbl.find_opt results (q.Workloads.Workload.name, "hyrise", `Hybrid) )
        with
        | Some j, Some h when j > 0 -> Some (float_of_int h /. float_of_int j)
        | _ -> None)
      queries
  in
  Common.note "geometric mean HYRISE/JiT cost ratio on hybrid: %.1fx"
    (geo ratios);
  Common.note
    "expected shape: relative costs across layouts similar for both \
     processors, but HYRISE's are uniformly 1-2 orders higher (per-value \
     function calls); paper notes Q9/Q10 favour HYRISE (it exploits implicit \
     ordering metadata we, like HyPer, do not)"
