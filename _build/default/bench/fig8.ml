(* Fig. 8 / Table III: the configuring experiment.  Random and sequential
   walks over growing regions expose the per-level latencies as plateaus;
   the model curve is the rr_acc cost for the same access count. *)

let run () =
  Common.header "Fig. 8 — cycles per access vs. region size";
  let params = Memsim.Params.nehalem in
  let accesses = 150_000 in
  let random = Memsim.Calibrator.run_random ~accesses params in
  let sequential = Memsim.Calibrator.run_sequential ~accesses params in
  let tab =
    Common.Texttab.create
      [ "region"; "experiment (random)"; "model"; "experiment (sequential)" ]
  in
  List.iter2
    (fun (r : Memsim.Calibrator.point) (s : Memsim.Calibrator.point) ->
      let n = r.Memsim.Calibrator.region_bytes / 8 in
      let atom = Costmodel.Pattern.Rr_acc { n; w = 8; u = 8; r = accesses } in
      let m = Costmodel.Miss_model.atom_misses params atom in
      let model_cycles =
        Costmodel.Cost_function.cost_of_misses params m
        /. float_of_int accesses
      in
      Common.Texttab.row tab
        [
          Common.pow10_label (float_of_int r.Memsim.Calibrator.region_bytes);
          Printf.sprintf "%.2f" r.Memsim.Calibrator.cycles_per_access;
          Printf.sprintf "%.2f" model_cycles;
          Printf.sprintf "%.2f" s.Memsim.Calibrator.cycles_per_access;
        ])
    random sequential;
  Common.Texttab.print tab

let table3 () =
  Common.header "Table III — hierarchy parameters (configured vs. fitted)";
  let params = Memsim.Params.nehalem in
  Format.printf "configured:@.%a@.@." Memsim.Params.pp params;
  let pts = Memsim.Calibrator.run_random ~accesses:150_000 params in
  let fitted = Memsim.Calibrator.fit_latencies params pts in
  let tab = Common.Texttab.create [ "level"; "fitted latency (cyc)" ] in
  List.iter
    (fun (name, lat) -> Common.Texttab.row tab [ name; string_of_int lat ])
    fitted;
  Common.Texttab.print tab;
  Common.note
    "fitted plateaus recover the configured latencies of Table III (L1 1, \
     L2 +3, L3 +8, memory +12)"
