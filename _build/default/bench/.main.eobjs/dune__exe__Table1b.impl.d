bench/table1b.ml: Common Costmodel Format Memsim Storage Workloads
