bench/fig11.ml: Common Hashtbl Layoutopt List Memsim Option Printf Storage String Workloads
