bench/common.ml: Engines Memsim Mrdb_util Printf String Sys Workloads
