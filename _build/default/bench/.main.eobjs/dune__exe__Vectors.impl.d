bench/vectors.ml: Common Engines List Memsim Printf Storage Workloads
