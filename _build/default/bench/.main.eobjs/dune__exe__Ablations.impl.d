bench/ablations.ml: Array Common Costmodel Float Format Layoutopt List Memsim Printf Storage Workloads
