bench/fig3.ml: Common Engines List Memsim Printf Storage Workloads
