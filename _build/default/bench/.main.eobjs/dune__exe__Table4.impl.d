bench/table4.ml: Common Format Layoutopt List Memsim Printf Storage Workloads
