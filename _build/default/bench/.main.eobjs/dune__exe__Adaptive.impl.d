bench/adaptive.ml: Common Engines Format Layoutopt List Memsim Relalg Storage Workloads
