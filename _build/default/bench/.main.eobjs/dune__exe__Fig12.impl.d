bench/fig12.ml: Common Layoutopt List Memsim Printf Storage String Workloads
