bench/wallclock.ml: Analyze Bechamel Benchmark Common Engines Hashtbl Instance List Measure Printf Staged Storage String Test Time Toolkit Workloads
