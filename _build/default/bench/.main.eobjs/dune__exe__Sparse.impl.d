bench/sparse.ml: Array Common Engines List Memsim Mrdb_util Printf Relalg Storage
