bench/fig10.ml: Common Layoutopt List Memsim Printf Storage String Workloads
