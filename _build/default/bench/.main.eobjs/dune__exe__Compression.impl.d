bench/compression.ml: Common Costmodel Engines List Memsim Mrdb_util Printf Relalg Storage
