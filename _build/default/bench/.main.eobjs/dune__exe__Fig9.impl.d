bench/fig9.ml: Common Engines Hashtbl Layoutopt List Memsim Storage String Workloads
