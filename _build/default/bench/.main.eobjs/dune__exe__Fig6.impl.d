bench/fig6.ml: Array Common Costmodel List Memsim Printf Storage Workloads
