bench/main.mli:
