bench/fig8.ml: Common Costmodel Format List Memsim Printf
