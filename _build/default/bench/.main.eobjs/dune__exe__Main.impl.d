bench/main.ml: Ablations Adaptive Array Compression Fig10 Fig11 Fig12 Fig3 Fig6 Fig8 Fig9 List Printf Sparse String Sys Table1b Table4 Vectors Wallclock
