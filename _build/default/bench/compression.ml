(* Extension bench: partial (dictionary) compression — the paper's
   Section VII suggestion that small-domain columns suit compression and
   that the hardware-conscious cost model can drive the choice.  A 16-byte
   low-cardinality string column is scanned plain vs. dictionary-encoded;
   the dictionary stays cache resident while the stored column shrinks from
   16 to 4 bytes per tuple. *)

module V = Storage.Value

let build ~encoded n =
  let hier = Memsim.Hierarchy.create () in
  let cat = Storage.Catalog.create ~hier () in
  let schema =
    Storage.Schema.make "sales"
      [
        ("id", V.Int);
        ("country", V.Varchar 16);
        ("product", V.Varchar 16);
        ("amount", V.Int);
      ]
  in
  let encodings =
    if encoded then [ (1, Storage.Encoding.Dict); (2, Storage.Encoding.Dict) ]
    else []
  in
  let rel =
    Storage.Catalog.add ~encodings cat schema (Storage.Layout.column schema)
  in
  let rng = Mrdb_util.Rng.create 77 in
  Storage.Relation.load rel ~n (fun ~row ->
      [|
        V.VInt row;
        V.VStr (Printf.sprintf "country_%02d" (Mrdb_util.Rng.int rng 20));
        V.VStr (Printf.sprintf "product_%03d" (Mrdb_util.Rng.int rng 500));
        V.VInt (Mrdb_util.Rng.int rng 10_000);
      |]);
  cat

let run () =
  Common.header
    "Extension — dictionary compression (cycles; 16B strings vs 4B codes)";
  let n = 200_000 in
  let queries =
    [
      ( "scan: sum by country filter",
        "select sum(amount) s from sales where country = $1",
        [| V.VStr "country_07" |] );
      ( "group by low-cardinality column",
        "select country, count(*) c from sales group by country",
        [||] );
      ( "point reconstruction",
        "select * from sales where id = $1",
        [| V.VInt 123_456 |] );
    ]
  in
  let tab =
    Common.Texttab.create
      [ "query"; "plain"; "dict"; "plain est"; "dict est"; "speedup" ]
  in
  let cats = [ ("plain", build ~encoded:false n); ("dict", build ~encoded:true n) ] in
  List.iter
    (fun (label, sql, params) ->
      let measure cat =
        let plan =
          Relalg.Planner.plan
            ~estimate:(fun (e : Relalg.Expr.t) ->
              match e with
              | Relalg.Expr.Cmp (Relalg.Expr.Eq, Relalg.Expr.Col 1, _) ->
                  Some 0.05
              | Relalg.Expr.Cmp (Relalg.Expr.Eq, Relalg.Expr.Col 0, _) ->
                  Some (1.0 /. float_of_int n)
              | _ -> None)
            cat
            (Relalg.Sql.parse cat sql)
        in
        let est = Costmodel.Model.query_cost cat plan in
        let _, st =
          Engines.Engine.run_measured Engines.Engine.Jit cat plan ~params
        in
        (Memsim.Stats.total_cycles st, est)
      in
      let plain, plain_est = measure (List.assoc "plain" cats) in
      let dict, dict_est = measure (List.assoc "dict" cats) in
      Common.Texttab.row tab
        [
          label;
          Common.pow10_label (float_of_int plain);
          Common.pow10_label (float_of_int dict);
          Common.pow10_label plain_est;
          Common.pow10_label dict_est;
          Printf.sprintf "%.2fx" (float_of_int plain /. float_of_int dict);
        ])
    queries;
  Common.Texttab.print tab;
  Common.note
    "expected shape: scans over the compressed column speed up (4x fewer \
     lines, dictionary cache-resident); the cost model predicts the same \
     direction because partition widths shrink and decodes are modeled as \
     rr_acc into the dictionary region"
