(* Fig. 12 / Table V: the CNET product-catalog benchmark.  Four queries with
   frequencies 1 / 1 / 100 / 10000, weighted cost per layout plus the sum. *)

let run () =
  Common.header "Fig. 12 — CNET catalog: weighted cost (cycles x frequency)";
  let n_products =
    int_of_float (Common.scale_env "MRDB_CNET_N" 20_000.0)
  in
  let n_extra = int_of_float (Common.scale_env "MRDB_CNET_EXTRA" 294.0) in
  let hier = Memsim.Hierarchy.create () in
  let cn = Workloads.Cnet.build ~hier ~n_products ~n_extra () in
  let cat = cn.Workloads.Cnet.cat in
  Common.header "Table V — the CNET queries";
  let qt = Common.Texttab.create [ "query"; "freq"; "sql" ] in
  List.iter
    (fun (q : Workloads.Workload.query) ->
      Common.Texttab.row qt
        [
          q.Workloads.Workload.name;
          Printf.sprintf "%.0f" q.Workloads.Workload.freq;
          q.Workloads.Workload.sql;
        ])
    cn.Workloads.Cnet.queries;
  Common.Texttab.print qt;
  let workload =
    Workloads.Workload.plans ~use_indexes:true cn.Workloads.Cnet.queries
  in
  let hybrid_result =
    Layoutopt.Optimizer.optimize_table cat "products" workload
  in
  let schema = Storage.Relation.schema (Storage.Catalog.find cat "products") in
  Printf.printf "optimizer layout (%d partitions):\n"
    (Storage.Layout.n_partitions hybrid_result.Layoutopt.Optimizer.layout);
  List.iter
    (fun g ->
      if List.length g <= 8 then
        Printf.printf "  {%s}\n" (String.concat "," g)
      else Printf.printf "  {...%d attributes}\n" (List.length g))
    (Storage.Layout.to_name_groups schema hybrid_result.Layoutopt.Optimizer.layout);
  let layouts =
    [
      ("row", Storage.Layout.row schema);
      ("column", Storage.Layout.column schema);
      ("hybrid", hybrid_result.Layoutopt.Optimizer.layout);
    ]
  in
  let tab =
    Common.Texttab.create [ "layout"; "C1"; "C2"; "C3"; "C4"; "weighted sum" ]
  in
  List.iter
    (fun (lname, layout) ->
      Storage.Catalog.set_layout cat "products" layout;
      let weighted =
        List.map
          (fun (q : Workloads.Workload.query) ->
            let c = Common.measure_query Common.run_jit cat q ~use_indexes:true in
            float_of_int c *. q.Workloads.Workload.freq)
          cn.Workloads.Cnet.queries
      in
      Common.Texttab.row tab
        (lname
        :: List.map Common.pow10_label weighted
        @ [ Common.pow10_label (List.fold_left ( +. ) 0.0 weighted) ]))
    layouts;
  Common.Texttab.print tab;
  Common.note
    "expected shape: analytical C1-C3 favour decomposition; the hot C4 \
     (select * by id) favours N-ary; the hybrid wins the weighted sum by \
     ~an order over row and by a factor over column"
